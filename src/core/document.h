// DynamicDocument — one mutating document serving many registered queries.
//
// The paper maintains one circuit+index per (document, query) pair, and so
// did the engines: each TreeEnumerator/WordEnumerator privately owned its
// encoding, so serving Q queries over one document paid the O(log n)
// balanced-term maintenance (Lemma 7.3's encoding half) Q times per edit
// and refreshed every query's boxes serially. This layer splits the pair:
//
//   * The document owns exactly one encoding — the balanced tree term
//     (`DynamicEncoding`) or the word AVL term (`WordEncoding`). Each edit
//     mutates the term once and produces one `UpdateResult`.
//   * Every registered query owns one `EnumerationPipeline` (circuit, jump
//     index, optional counts) over the shared term. The per-edit
//     UpdateResult is broadcast to all of them, so the encoding half of
//     update maintenance is paid once regardless of Q.
//   * Batch transactions (BeginBatch/CommitBatch/ApplyEdits) are coalesced
//     at the document: the freed/changed term-node sets of the whole batch
//     are merged, filtered against the term, and depth-ordered exactly
//     once; each pipeline then consumes the same merged changed-box set.
//   * Registered queries are *deduplicated*: each query is canonicalized
//     (automata/homogenize.h) and looked up by fingerprint + exact
//     equality in the document's query registry, so textually different
//     but automaton-identical queries map to one refcounted pipeline. The
//     registry keeps refcount-zero pipelines warm for cheap re-admission
//     and supports a configurable cap with cost-aware eviction (see
//     set_pipeline_cap); DocumentStats exposes the registry state. The
//     registry's own metadata is bounded too: handle and entry slots
//     recycle through free lists (handles carry generation tags so stale
//     ones never validate), and evicted-entry metadata kept for the
//     cheap-rebuild path has its own LRU cap (set_evicted_retention_cap).
//   * Refresh fan-out optionally runs on a ThreadPool (util/thread_pool.h)
//     and iterates *distinct* pipelines only — per-edit refresh cost
//     scales with the number of distinct queries, not registrations.
//     Pipelines share only the immutable term during a refresh — all
//     written state (circuit arena, index pools, counts) is pipeline-
//     private — so per-query refreshes are embarrassingly parallel. With
//     no pool, or a pool of size 1, the fan-out runs inline in build
//     order: the deterministic single-thread fallback, which also keeps
//     the single-query steady state allocation-free.
//   * Every committed edit publishes the new term root as an immutable
//     snapshot (core/snapshot.h) over the copy-on-write term: reader
//     threads pin the current snapshot (CurrentSnapshot) and enumerate it
//     (EnumerateAt / MakeCursorAt) concurrently with writer edits — the
//     writer path-copies the O(log n) edit spine instead of mutating
//     pinned versions in place, so readers never see a torn term or a box
//     rebuilt under them. Old snapshots keep answering with their
//     pre-edit results until released (time-travel). Retired snapshots
//     are drained before the next edit, recycling their node versions and
//     boxes through the arena free lists — steady state stays
//     allocation-free.
//
// TreeEnumerator and WordEnumerator are thin views over a private document
// with one registered query; multi-query servers hold a DynamicDocument
// directly and query each pipeline.
#ifndef TREENUM_CORE_DOCUMENT_H_
#define TREENUM_CORE_DOCUMENT_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "automata/homogenize.h"
#include "automata/query_cache.h"
#include "automata/unranked_tva.h"
#include "automata/wva.h"
#include "core/engine.h"
#include "core/pipeline.h"
#include "core/snapshot.h"
#include "falgebra/update.h"
#include "falgebra/word_avl.h"
#include "trees/unranked_tree.h"
#include "util/thread_pool.h"

namespace treenum {

/// Where a structural transaction attaches the moved/grafted subtree
/// relative to its destination anchor.
enum class AttachWhere {
  kFirstChild,    ///< becomes the first child of the anchor
  kRightSibling,  ///< becomes the right sibling of the anchor (non-root)
};

/// Registry observability snapshot (see DynamicDocument::stats()): how many
/// queries and pipelines are live, how registrations were served, and the
/// accumulated per-pipeline refresh cost.
struct DocumentStats {
  /// Per-pipeline registry entry state.
  struct PipelineStats {
    uint64_t fingerprint = 0;   ///< Canonical-form fingerprint (registry key).
    size_t queries = 0;         ///< Live registrations sharing this pipeline.
    size_t width = 0;           ///< Automaton width (circuit state count).
    uint64_t boxes_refreshed = 0;  ///< Lifetime box refreshes paid by it.
    bool built = false;         ///< Pipeline currently materialized.
  };

  size_t live_queries = 0;     ///< Live handles (registrations).
  size_t live_pipelines = 0;   ///< Built pipelines (active + warm).
  size_t active_pipelines = 0; ///< Built pipelines with refcount > 0.
  size_t warm_pipelines = 0;   ///< Built pipelines with refcount == 0.
  size_t evicted_entries = 0;  ///< Registry entries whose pipeline was evicted.
  size_t shared_hits = 0;      ///< Registrations served by an active pipeline.
  size_t readmissions = 0;     ///< Registrations served by a warm pipeline.
  size_t rebuilds = 0;         ///< Registrations that rebuilt an evicted entry.
  size_t evictions = 0;        ///< Pipelines destroyed by the cap.
  size_t handle_slots = 0;     ///< Handle-table slots (recycled, ~peak live).
  size_t registry_entries = 0; ///< Occupied registry entry slots.
  size_t reclaimed_entries = 0;  ///< Evicted entries fully reclaimed (lifetime).
  std::vector<PipelineStats> pipelines;  ///< One entry per retained query.
};

/// One mutating document (tree or word) serving many registered queries
/// through a deduplicating, refcounted query registry (see the file
/// comment above for the full design).
class DynamicDocument {
 public:
  /// Handle of one registration. Handles are stable across other
  /// registrations and unregistrations; several live handles may resolve
  /// to the same deduplicated pipeline.
  using QueryHandle = size_t;
  /// Backward-compatible alias (pre-registry name).
  using QueryId = QueryHandle;
  /// Pipeline cap value meaning "never evict".
  static constexpr size_t kNoPipelineCap = static_cast<size_t>(-1);
  /// Default pipeline cap: plenty of headroom for realistic working sets,
  /// while bounding what dominates memory and per-edit cost — built
  /// pipelines, each O(document size) and refreshed on every edit — so
  /// long-lived documents with query churn (register, serve, unregister,
  /// repeat with new queries) can't accumulate either without bound.
  /// Raise it — or pass kNoPipelineCap — via set_pipeline_cap to retain
  /// more. The small O(poly automaton-size) metadata of *evicted* entries
  /// (the canonical automaton, kept for cheap rebuild) is bounded
  /// separately by set_evicted_retention_cap, and handle slots are
  /// recycled through a free list — so every piece of registry state is
  /// bounded by the live working set plus the two caps, no matter how
  /// many registrations a long-lived document churns through.
  static constexpr size_t kDefaultPipelineCap = 64;
  /// Default cap on evicted-entry metadata retained for rebuilds.
  static constexpr size_t kDefaultEvictedRetention = 256;

  /// A tree document: encodes `tree` as a balanced term (linear time).
  /// Every registered query must use exactly `num_labels` base labels.
  /// Query compilation is routed through `cache` (null = the process-wide
  /// QueryCache::Global()), so documents sharing a cache share compiled
  /// plans; the cache must outlive the document.
  DynamicDocument(UnrankedTree tree, size_t num_labels,
                  QueryCache* cache = nullptr);
  /// A word document over the AVL ⊕HH term (Corollary 8.4); `cache` as in
  /// the tree constructor.
  DynamicDocument(const Word& w, size_t num_labels,
                  QueryCache* cache = nullptr);

  DynamicDocument(const DynamicDocument&) = delete;
  DynamicDocument& operator=(const DynamicDocument&) = delete;

  // ---- Introspection ----

  /// True for word documents, false for tree documents.
  bool is_word() const { return word_enc_ != nullptr; }
  /// The shared balanced term every pipeline is built over.
  const Term& term() const { return *term_; }
  /// The current tree (tree documents only).
  const UnrankedTree& tree() const;
  /// The balanced-term encoding backend (tree documents only).
  const DynamicEncoding& tree_encoding() const;
  /// The AVL-term encoding backend (word documents only).
  const WordEncoding& word_encoding() const;
  /// Current input size (tree nodes / word letters).
  size_t size() const;

  // ---- Query registration (deduplicating registry) ----

  /// Registers a query. Compilation (translation + homogenization +
  /// canonicalization) is served by the shared QueryCache: a query any
  /// document using the same cache has already compiled is admitted with
  /// zero compilation work. The per-document registry then either admits
  /// the compiled plan to an existing pipeline (same canonical automaton
  /// and mode — a dedupe hit) or builds a new pipeline (circuit and, in
  /// kIndexed mode, jump index) over the current term — O(size *
  /// poly(|Q|)). Not allowed mid-batch.
  QueryHandle Register(const UnrankedTva& query,
                       BoxEnumMode mode = BoxEnumMode::kIndexed);
  /// Word-document overload of Register (queries are WVAs / spanners).
  QueryHandle Register(const Wva& query,
                       BoxEnumMode mode = BoxEnumMode::kIndexed);
  /// Registers an already-prepared automaton (must be over this document's
  /// term alphabet). Canonicalized (by the shared cache) and deduplicated
  /// like Register.
  QueryHandle RegisterPrepared(HomogenizedTva homog, BoxEnumMode mode);
  /// The compiled-query cache this document's registrations go through.
  QueryCache& query_cache() const { return *cache_; }
  /// Releases one registration; the handle becomes invalid. The shared
  /// pipeline lives on while other handles reference it; at refcount zero
  /// it is kept *warm* — still refreshed on every edit, so re-registering
  /// the same query is a cheap re-admission instead of an O(size) rebuild
  /// — until the pipeline cap evicts it (cheapest-to-rebuild / stalest
  /// first; see set_pipeline_cap).
  void Unregister(QueryHandle handle);
  /// True iff `handle` was returned by Register and not yet unregistered.
  bool IsRegistered(QueryHandle handle) const;
  /// Number of live registrations (handles), counting duplicates.
  size_t num_queries() const { return num_live_; }
  /// Number of built pipelines: distinct live queries plus warm
  /// (refcount-zero, not yet evicted) entries. This — not num_queries() —
  /// is what per-edit refresh cost scales with.
  size_t num_pipelines() const { return built_entries_.size(); }

  /// The pipeline serving a registration — the per-query surface for
  /// enumeration (EnumerateAll / MakeEngineCursor / HasAnswer / counting).
  /// Duplicate registrations return the same pipeline object.
  EnumerationPipeline& pipeline(QueryHandle handle);
  /// Const overload of pipeline().
  const EnumerationPipeline& pipeline(QueryHandle handle) const;

  // ---- Admission / eviction policy ----

  /// Caps the number of built pipelines. When an admission (or this call,
  /// or an unregistration) pushes num_pipelines() above the cap, warm
  /// refcount-zero pipelines are evicted — cost-aware, not plain LRU: the
  /// victim is the one minimizing accumulated refresh cost (the
  /// DocumentStats boxes_refreshed counter, a proxy for how expensive the
  /// pipeline is to keep rebuilt) divided by staleness (registrations/
  /// releases since it was last used). A cheap-and-stale pipeline is
  /// evicted before an expensive-and-recently-hot one, minimizing the
  /// expected rebuild cost of keeping the cap — with equal costs this
  /// degenerates to LRU. Eviction repeats until the cap holds or only
  /// actively referenced pipelines remain; active pipelines are never
  /// evicted, so num_pipelines() may exceed the cap while more than `cap`
  /// distinct queries are live. An evicted entry keeps its canonical
  /// automaton; re-registering rebuilds the pipeline over the current term
  /// without re-homogenizing. Not allowed mid-batch.
  void set_pipeline_cap(size_t cap);
  /// Current cap (kDefaultPipelineCap unless overridden; kNoPipelineCap
  /// disables eviction entirely).
  size_t pipeline_cap() const { return pipeline_cap_; }
  /// Caps how many *evicted* entries keep their canonical automaton for
  /// the cheap-rebuild path. Beyond the cap the LRU evicted entries are
  /// reclaimed outright (slot recycled, fingerprint forgotten);
  /// re-registering such a query is indistinguishable from a first
  /// registration. Not allowed mid-batch.
  void set_evicted_retention_cap(size_t cap);
  /// Current evicted-metadata retention cap.
  size_t evicted_retention_cap() const { return evicted_retention_cap_; }
  /// Registry + refresh-cost observability snapshot.
  DocumentStats stats() const;

  // ---- Refresh fan-out ----

  /// Attaches a worker pool (not owned; must outlive its use here). The
  /// pool runs one fork-join job at a time, so sharing it across
  /// documents requires external serialization: only one document may be
  /// inside an edit/commit at any moment. Pipelines refresh in parallel
  /// when the pool has > 1 lane and > 1 query is registered; null (the
  /// default) or a 1-lane pool means inline, deterministic,
  /// allocation-free fan-out.
  void set_pool(ThreadPool* pool) { pool_ = pool; }
  /// The attached pool (null = inline, deterministic fan-out).
  ThreadPool* pool() const { return pool_; }

  // ---- Concurrent snapshot reads ----
  //
  // The single-writer / multi-reader surface. Reader threads pin the
  // current snapshot and evaluate registered queries against it while the
  // writer thread keeps editing (including mid-batch — the update_pending
  // barrier does not apply to pinned versions, whose boxes are complete
  // and frozen). Handles passed here must have been registered *before*
  // the concurrent phase: Register/Unregister/set_pipeline_cap are
  // writer-side and not synchronized against readers, and a query's
  // pipeline can only serve snapshots published at or after its build
  // (checked against the snapshot epoch). A SnapshotRef must be released
  // before the document is destroyed.

  /// Pre-resolved read surface for one registration, safe to use from
  /// reader threads *even while the writer thread mutates the query
  /// registry* (Register/Unregister/set_pipeline_cap). EnumerateAt &
  /// friends resolve handle → pipeline through the registry tables on
  /// every call, which is fine when registrations are quiesced during the
  /// concurrent phase — but a shard server interleaves registrations with
  /// reads, and the tables reallocate. A ReaderView captures the pipeline
  /// pointer once, on the writer side, and afterwards touches only the
  /// immutable pipeline + the pinned snapshot version.
  ///
  /// Contract: create the view on the writer thread (no concurrent
  /// registry mutation), and keep the underlying registration live for as
  /// long as any thread uses the view — the pipeline is never evicted
  /// while its refcount is non-zero, so a live handle is exactly what
  /// keeps the view's pointer valid. The serving layer (serving/
  /// shard_server.h) enforces this by resolving views on the shard worker
  /// at registration time and invalidating them before the unregister
  /// command commits.
  class ReaderView {
   public:
    ReaderView() = default;
    /// True when bound to a registration.
    explicit operator bool() const { return pipeline_ != nullptr; }
    /// HasAnswer at `snap`. Any thread (see the class contract).
    bool HasAnswerAt(const SnapshotRef& snap) const;
    /// All satisfying assignments at `snap`. Any thread.
    std::vector<Assignment> EnumerateAt(const SnapshotRef& snap) const;
    /// Cursor at `snap`; co-owns the pin like MakeCursorAt. Any thread.
    std::unique_ptr<Engine::Cursor> MakeCursorAt(SnapshotRef snap) const;

   private:
    friend class DynamicDocument;
    explicit ReaderView(const EnumerationPipeline* p) : pipeline_(p) {}
    const EnumerationPipeline* pipeline_ = nullptr;
  };

  /// Resolves `handle` into a ReaderView (writer thread only; see the
  /// ReaderView contract above).
  ReaderView reader_view(QueryHandle handle) const {
    return ReaderView(&pipeline(handle));
  }

  /// Pins the most recently published snapshot. Any thread.
  SnapshotRef CurrentSnapshot() const { return snapshots_->Current(); }
  /// HasAnswer for `handle`'s query evaluated at `snap`. Any thread.
  bool HasAnswerAt(const SnapshotRef& snap, QueryHandle handle) const;
  /// All satisfying assignments of `handle`'s query at `snap`. Any thread.
  std::vector<Assignment> EnumerateAt(const SnapshotRef& snap,
                                      QueryHandle handle) const;
  /// Cursor over `handle`'s assignments at `snap`; the cursor co-owns the
  /// pin, so the version outlives it even after `snap` is released.
  std::unique_ptr<Engine::Cursor> MakeCursorAt(SnapshotRef snap,
                                               QueryHandle handle) const;
  /// Lifetime number of published snapshots.
  uint64_t snapshots_published() const { return snapshots_->published(); }
  /// Snapshots currently pinned (current + reader-held + not yet drained).
  size_t live_snapshots() const { return snapshots_->live_snapshots(); }

  // ---- Tree edits (Definition 7.1), O(log n * poly(Q)) + fan-out ----
  // UpdateStats totals are summed across built pipelines (distinct live
  // queries + warm entries): boxes_recomputed counts every per-pipeline
  // box refresh.

  /// Changes the label of node `n`.
  UpdateStats Relabel(NodeId n, Label l);
  /// Inserts a new first child under `n` (id reported via `new_node`).
  UpdateStats InsertFirstChild(NodeId n, Label l, NodeId* new_node = nullptr);
  /// Inserts a new right sibling of `n` (id reported via `new_node`).
  UpdateStats InsertRightSibling(NodeId n, Label l,
                                 NodeId* new_node = nullptr);
  /// Deletes leaf `n`.
  UpdateStats DeleteLeaf(NodeId n);

  // ---- Tree structural transactions ----
  // Each call is ONE transaction: the term region covering the subtree is
  // re-encoded once, every surviving box is rebuilt once per pipeline
  // (ApplyCoalesced — arena spans recycle instead of free/realloc), and
  // one snapshot epoch is published. Inside a batch the transaction
  // coalesces with the other recorded edits as usual.

  /// Moves the subtree at `v` to `dst` (which must be outside the subtree).
  UpdateStats SubtreeMove(NodeId v, NodeId dst,
                          AttachWhere where = AttachWhere::kFirstChild);
  /// Deletes the whole subtree at `v` (non-root).
  UpdateStats SubtreeDelete(NodeId v);
  /// Deletes the subtree at `v`, assigning a fresh-id copy to `*extracted`.
  UpdateStats SubtreeExtract(NodeId v, UnrankedTree* extracted);
  /// Inserts a copy of `src`'s subtree at `src_root` next to `dst`.
  UpdateStats GraftSubtree(const UnrankedTree& src, NodeId src_root,
                           NodeId dst,
                           AttachWhere where = AttachWhere::kFirstChild,
                           NodeId* new_root = nullptr);

  // ---- Word edits by logical position, worst-case O(log |w|) ----

  /// Replaces the letter at position `pos`.
  UpdateStats Replace(size_t pos, Label l);
  /// Inserts letter `l` so that it becomes position `pos`.
  UpdateStats Insert(size_t pos, Label l);
  /// Erases the letter at position `pos`.
  UpdateStats Erase(size_t pos);
  // ---- Word structural transactions (AVL split/join) ----

  /// Moves the factor [begin, end) so it starts at `dst` of the remaining
  /// word (AVL split/join; position ids are preserved).
  UpdateStats MoveRange(size_t begin, size_t end, size_t dst);
  /// Erases the factor [begin, end); at least one letter must remain.
  UpdateStats EraseRange(size_t begin, size_t end);
  /// Erases the factor [begin, end), assigning it to `*extracted`.
  UpdateStats ExtractRange(size_t begin, size_t end, Word* extracted);
  /// Appends the non-empty word `w` (one balanced subterm, one join).
  UpdateStats Concat(const Word& w);

  // ---- Batched updates ----

  /// Opens a transaction: edits mutate the term immediately but the
  /// freed/changed sets are only recorded (once, at the document — the
  /// pipelines see nothing until commit). Querying any pipeline while a
  /// batch is open is unsupported.
  void BeginBatch();
  /// Merges everything recorded since BeginBatch — a node touched by many
  /// edits is refreshed once per pipeline, a node created and deleted
  /// within the batch never — and fans the merged set out to every
  /// pipeline (in parallel when a pool is attached).
  UpdateStats CommitBatch();
  /// True while a transaction is open.
  bool in_batch() const { return in_batch_; }

  /// Applies one Edit (tree vocabulary; on word documents Edit::node is a
  /// stable position id, exactly as in WordEnumerator's Engine surface).
  UpdateStats ApplyEdit(const Edit& e, NodeId* new_node = nullptr);
  /// Applies a whole edit script in one transaction; if a batch is already
  /// open the edits join it and the commit stays with the caller.
  UpdateStats ApplyEdits(const std::vector<Edit>& edits);

 private:
  /// One deduplicated query: the canonical automaton (shared with the
  /// pipeline, and retained across eviction for the rebuild path), the
  /// refcounted pipeline, and the LRU/cost bookkeeping.
  struct QueryEntry {
    uint64_t fingerprint = 0;
    std::shared_ptr<const HomogenizedTva> homog;
    BoxEnumMode mode = BoxEnumMode::kIndexed;
    std::unique_ptr<EnumerationPipeline> pipeline;  // null once evicted
    size_t refcount = 0;
    uint64_t last_use = 0;  // LRU stamp: last registration or release
    uint64_t boxes_refreshed = 0;  // lifetime refresh cost
  };
  static constexpr size_t kNoEntry = static_cast<size_t>(-1);

  // Handles pack a recycled slot index (low 32 bits) with that slot's
  // generation (high 32 bits): unregistering bumps the generation, so a
  // stale handle to a recycled slot never validates. Generations wrap at
  // 2^32 reuses of one slot — far beyond any realistic churn.
  static constexpr QueryHandle MakeHandle(uint32_t slot, uint32_t gen) {
    return (static_cast<QueryHandle>(gen) << 32) | slot;
  }
  static constexpr uint32_t HandleSlot(QueryHandle h) {
    return static_cast<uint32_t>(h);
  }
  static constexpr uint32_t HandleGen(QueryHandle h) {
    return static_cast<uint32_t>(h >> 32);
  }

  /// The encoding's term, writable — for the snapshot layer's pin/epoch
  /// bookkeeping (the pipelines still see it const).
  Term& mutable_term() {
    return tree_enc_ ? tree_enc_->mutable_term() : word_enc_->mutable_term();
  }
  /// Admits a cache-served compiled plan to the per-document registry:
  /// dedupe by canonical fingerprint + pointer/structural equality, then
  /// pipeline build/rebuild/share exactly as before the global cache —
  /// no translation or homogenization happens here.
  QueryHandle AdmitShared(std::shared_ptr<const HomogenizedTva> homog,
                          BoxEnumMode mode);
  /// Runs before every edit (once per batch): drains retired snapshots,
  /// reclaiming their node versions, and releases the freed boxes in every
  /// pipeline — so the edit's path copies can recycle those ids and spans.
  void PreEdit();
  /// Broadcasts one UpdateResult (outside a batch) or records it (inside).
  UpdateStats Dispatch(const UpdateResult& result);
  /// Dispatch for structural transactions: the result's changed set is
  /// already coalesced (children-first, deduplicated), so every pipeline
  /// consumes it through ApplyCoalesced — each surviving box rebuilt once,
  /// circuit/index spans reserved and recycled up front. Records like
  /// Dispatch when a batch is open.
  UpdateStats DispatchTransaction(const UpdateResult& result);
  /// Runs fn(pipeline) on every built pipeline — on the pool when parallel
  /// fan-out is enabled, else inline in build order.
  template <typename Fn>
  void FanOut(const Fn& fn);
  void SetPipelinesPending(bool pending);
  UpdateStats WordInsertAt(size_t pos, Label l, NodeId* new_node);
  /// Charges `boxes` refreshes to every built pipeline's cost counter.
  void ChargeRefresh(size_t boxes);
  /// Evicts warm pipelines (LRU first) until the cap holds or only active
  /// pipelines remain.
  void EnforceCap();

  // Exactly one encoding is non-null. unique_ptr keeps the Term address
  // stable for the pipelines.
  std::unique_ptr<DynamicEncoding> tree_enc_;
  std::unique_ptr<WordEncoding> word_enc_;
  const Term* term_;
  // Declared after the encodings: destroyed first, while the term it
  // unpins from still exists.
  std::unique_ptr<TermSnapshots> snapshots_;
  // PreEdit drain scratch (clear() keeps capacity).
  std::vector<TermNodeId> drained_freed_;

  // The query registry. Entry slots recycle through entry_free_ once an
  // evicted entry's metadata is reclaimed (homog == nullptr marks a free
  // slot); handle slots recycle through handle_free_ under generation
  // tags, so surviving handles stay valid while the tables stay bounded
  // by the peak working set plus the caps.
  std::vector<QueryEntry> entries_;
  std::unordered_multimap<uint64_t, size_t> by_fingerprint_;
  std::vector<size_t> entry_free_;
  std::vector<size_t> handle_entry_;  // per-slot entry idx; kNoEntry if dead
  std::vector<uint32_t> handle_gen_;
  std::vector<uint32_t> handle_free_;
  // Indices of entries with a built pipeline, in build order — the edit
  // path (fan-out, pending flags, cost charging) iterates this compact
  // list, so per-edit cost is O(built pipelines), not O(entries ever
  // registered). Maintained on build/rebuild/evict.
  std::vector<size_t> built_entries_;
  size_t num_live_ = 0;  // live handles
  size_t pipeline_cap_ = kDefaultPipelineCap;
  size_t evicted_retention_cap_ = kDefaultEvictedRetention;
  size_t retained_evicted_ = 0;  // evicted entries still holding metadata
  uint64_t use_clock_ = 0;
  size_t shared_hits_ = 0;
  size_t readmissions_ = 0;
  size_t rebuilds_ = 0;
  size_t evictions_ = 0;
  size_t reclaimed_ = 0;
  ThreadPool* pool_ = nullptr;
  QueryCache* cache_ = nullptr;  // never null after construction

  bool in_batch_ = false;
  // Document-level transaction record and commit scratch. clear() keeps
  // capacities, so steady-state batched relabels stay allocation-free.
  std::vector<TermNodeId> batch_freed_;
  std::vector<TermNodeId> batch_changed_;
  std::vector<TermNodeId> dead_freed_;
  std::vector<TermNodeId> ordered_changed_;
  std::vector<std::pair<uint32_t, TermNodeId>> order_scratch_;
  std::vector<EnumerationPipeline*> fan_scratch_;
};

}  // namespace treenum

#endif  // TREENUM_CORE_DOCUMENT_H_
