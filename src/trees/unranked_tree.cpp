#include "trees/unranked_tree.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/random.h"

namespace treenum {

UnrankedTree::UnrankedTree(Label root_label) {
  root_ = AllocNode(root_label, kNoNode);
}

NodeId UnrankedTree::AllocNode(Label l, NodeId parent) {
  NodeId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    nodes_[id] = Node{};
  } else {
    id = static_cast<NodeId>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[id].label = l;
  nodes_[id].parent = parent;
  nodes_[id].alive = true;
  ++size_;
  return id;
}

void UnrankedTree::Relabel(NodeId n, Label l) {
  assert(IsAlive(n));
  nodes_[n].label = l;
}

NodeId UnrankedTree::InsertFirstChild(NodeId n, Label l) {
  assert(IsAlive(n));
  NodeId id = AllocNode(l, n);
  auto& ch = nodes_[n].children;
  ch.insert(ch.begin(), id);
  return id;
}

NodeId UnrankedTree::InsertRightSibling(NodeId n, Label l) {
  assert(IsAlive(n));
  NodeId p = nodes_[n].parent;
  if (p == kNoNode) {
    throw std::invalid_argument("InsertRightSibling: n must not be the root");
  }
  NodeId id = AllocNode(l, p);
  auto& ch = nodes_[p].children;
  auto it = std::find(ch.begin(), ch.end(), n);
  assert(it != ch.end());
  ch.insert(it + 1, id);
  return id;
}

void UnrankedTree::DeleteLeaf(NodeId n) {
  assert(IsAlive(n));
  if (!IsLeaf(n)) {
    throw std::invalid_argument("DeleteLeaf: node is not a leaf");
  }
  if (n == root_) {
    throw std::invalid_argument("DeleteLeaf: cannot delete the root");
  }
  NodeId p = nodes_[n].parent;
  auto& ch = nodes_[p].children;
  ch.erase(std::find(ch.begin(), ch.end(), n));
  nodes_[n].alive = false;
  free_list_.push_back(n);
  --size_;
}

NodeId UnrankedTree::AppendChild(NodeId n, Label l) {
  assert(IsAlive(n));
  NodeId id = AllocNode(l, n);
  nodes_[n].children.push_back(id);
  return id;
}

size_t UnrankedTree::SubtreeSize(NodeId v) const {
  assert(IsAlive(v));
  size_t m = 0;
  walk_scratch_.clear();
  walk_scratch_.push_back(v);
  while (!walk_scratch_.empty()) {
    NodeId n = walk_scratch_.back();
    walk_scratch_.pop_back();
    ++m;
    for (NodeId c : nodes_[n].children) walk_scratch_.push_back(c);
  }
  return m;
}

size_t UnrankedTree::DetachSubtree(NodeId v) {
  assert(IsAlive(v));
  if (v == root_) {
    throw std::invalid_argument("DetachSubtree: cannot detach the root");
  }
  NodeId p = nodes_[v].parent;
  auto& ch = nodes_[p].children;
  ch.erase(std::find(ch.begin(), ch.end(), v));
  nodes_[v].parent = kNoNode;
  size_t m = SubtreeSize(v);
  size_ -= m;
  return m;
}

void UnrankedTree::AttachSubtreeFirstChild(NodeId v, NodeId p) {
  assert(IsAlive(v) && nodes_[v].parent == kNoNode && v != root_);
  assert(IsAlive(p));
  nodes_[v].parent = p;
  auto& ch = nodes_[p].children;
  ch.insert(ch.begin(), v);
  size_ += SubtreeSize(v);
}

void UnrankedTree::AttachSubtreeRightSibling(NodeId v, NodeId n) {
  assert(IsAlive(v) && nodes_[v].parent == kNoNode && v != root_);
  assert(IsAlive(n));
  NodeId p = nodes_[n].parent;
  if (p == kNoNode) {
    throw std::invalid_argument(
        "AttachSubtreeRightSibling: anchor must not be the root");
  }
  nodes_[v].parent = p;
  auto& ch = nodes_[p].children;
  auto it = std::find(ch.begin(), ch.end(), n);
  assert(it != ch.end());
  ch.insert(it + 1, v);
  size_ += SubtreeSize(v);
}

void UnrankedTree::FreeDetached(NodeId v) {
  assert(IsAlive(v) && nodes_[v].parent == kNoNode && v != root_);
  walk_scratch_.clear();
  walk_scratch_.push_back(v);
  while (!walk_scratch_.empty()) {
    NodeId n = walk_scratch_.back();
    walk_scratch_.pop_back();
    for (NodeId c : nodes_[n].children) walk_scratch_.push_back(c);
    nodes_[n].alive = false;
    nodes_[n].children.clear();
    free_list_.push_back(n);
  }
}

namespace {

void CopySubtreeRec(const UnrankedTree& src, NodeId sn, UnrankedTree& dst,
                    NodeId dn) {
  for (NodeId c : src.children(sn)) {
    CopySubtreeRec(src, c, dst, dst.AppendChild(dn, src.label(c)));
  }
}

}  // namespace

UnrankedTree UnrankedTree::CopySubtree(NodeId v) const {
  assert(IsAlive(v));
  UnrankedTree out(label(v));
  CopySubtreeRec(*this, v, out, out.root());
  return out;
}

NodeId UnrankedTree::CopyDetachedFrom(const UnrankedTree& src,
                                      NodeId src_root) {
  assert(src.IsAlive(src_root));
  // AllocNode bumps size_; detached nodes must not count, so undo below.
  NodeId nv = AllocNode(src.label(src_root), kNoNode);
  size_t copied = 1;
  // Pairs of (src node, dst node) still to expand.
  std::vector<std::pair<NodeId, NodeId>> stack{{src_root, nv}};
  while (!stack.empty()) {
    auto [sn, dn] = stack.back();
    stack.pop_back();
    for (NodeId c : src.children(sn)) {
      NodeId dc = AllocNode(src.label(c), dn);
      nodes_[dn].children.push_back(dc);
      ++copied;
      stack.emplace_back(c, dc);
    }
  }
  size_ -= copied;
  return nv;
}

std::vector<NodeId> UnrankedTree::PreorderNodes() const {
  std::vector<NodeId> out;
  out.reserve(size_);
  std::vector<NodeId> stack{root_};
  while (!stack.empty()) {
    NodeId n = stack.back();
    stack.pop_back();
    out.push_back(n);
    const auto& ch = nodes_[n].children;
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

size_t UnrankedTree::Depth(NodeId n) const {
  size_t d = 0;
  while (nodes_[n].parent != kNoNode) {
    n = nodes_[n].parent;
    ++d;
  }
  return d;
}

size_t UnrankedTree::Height() const {
  size_t h = 0;
  // Iterative DFS carrying depth.
  std::vector<std::pair<NodeId, size_t>> stack{{root_, 0}};
  while (!stack.empty()) {
    auto [n, d] = stack.back();
    stack.pop_back();
    h = std::max(h, d);
    for (NodeId c : nodes_[n].children) stack.emplace_back(c, d + 1);
  }
  return h;
}

namespace {

void ToStringRec(const UnrankedTree& t, NodeId n, std::string& out) {
  out += '(';
  Label l = t.label(n);
  if (l < 26) {
    out += static_cast<char>('a' + l);
  } else {
    out += 'L';
    out += std::to_string(l);
  }
  for (NodeId c : t.children(n)) {
    out += ' ';
    ToStringRec(t, c, out);
  }
  out += ')';
}

}  // namespace

std::string UnrankedTree::ToString() const {
  std::string out;
  ToStringRec(*this, root_, out);
  return out;
}

UnrankedTree UnrankedTree::Parse(const std::string& sexpr) {
  size_t pos = 0;
  auto skip_ws = [&] {
    while (pos < sexpr.size() && sexpr[pos] == ' ') ++pos;
  };

  // Recursive-descent parser.
  struct Parser {
    const std::string& s;
    size_t& pos;
    UnrankedTree* tree;
    void Node(NodeId parent) {
      while (pos < s.size() && s[pos] == ' ') ++pos;
      if (pos >= s.size() || s[pos] != '(') {
        throw std::invalid_argument("Parse error: expected '('");
      }
      ++pos;
      if (pos >= s.size() || s[pos] < 'a' || s[pos] > 'z') {
        throw std::invalid_argument("Parse error: expected label letter");
      }
      Label l = static_cast<Label>(s[pos] - 'a');
      ++pos;
      NodeId me;
      if (parent == kNoNode) {
        me = tree->root();
        tree->Relabel(me, l);
      } else {
        me = tree->AppendChild(parent, l);
      }
      while (true) {
        while (pos < s.size() && s[pos] == ' ') ++pos;
        if (pos < s.size() && s[pos] == '(') {
          Node(me);
        } else {
          break;
        }
      }
      if (pos >= s.size() || s[pos] != ')') {
        throw std::invalid_argument("Parse error: expected ')'");
      }
      ++pos;
    }
  };

  UnrankedTree t(0);
  skip_ws();
  Parser p{sexpr, pos, &t};
  p.Node(kNoNode);
  skip_ws();
  if (pos != sexpr.size()) {
    throw std::invalid_argument("Parse error: trailing characters");
  }
  return t;
}

namespace {

bool SubtreeEquals(const UnrankedTree& a, NodeId na, const UnrankedTree& b,
                   NodeId nb) {
  if (a.label(na) != b.label(nb)) return false;
  const auto& ca = a.children(na);
  const auto& cb = b.children(nb);
  if (ca.size() != cb.size()) return false;
  for (size_t i = 0; i < ca.size(); ++i) {
    if (!SubtreeEquals(a, ca[i], b, cb[i])) return false;
  }
  return true;
}

}  // namespace

bool UnrankedTree::operator==(const UnrankedTree& other) const {
  if (size_ != other.size_) return false;
  return SubtreeEquals(*this, root_, other, other.root_);
}

UnrankedTree RandomTree(size_t n, size_t num_labels, Rng& rng) {
  assert(n >= 1);
  UnrankedTree t(static_cast<Label>(rng.Index(num_labels)));
  std::vector<NodeId> ids{t.root()};
  for (size_t i = 1; i < n; ++i) {
    NodeId parent = ids[rng.Index(ids.size())];
    NodeId c = t.AppendChild(parent, static_cast<Label>(rng.Index(num_labels)));
    ids.push_back(c);
  }
  return t;
}

UnrankedTree PathTree(size_t n, size_t num_labels, Rng& rng) {
  assert(n >= 1);
  UnrankedTree t(static_cast<Label>(rng.Index(num_labels)));
  NodeId cur = t.root();
  for (size_t i = 1; i < n; ++i) {
    cur = t.AppendChild(cur, static_cast<Label>(rng.Index(num_labels)));
  }
  return t;
}

UnrankedTree KaryTree(size_t n, size_t k, size_t num_labels, Rng& rng) {
  assert(n >= 1 && k >= 1);
  UnrankedTree t(static_cast<Label>(rng.Index(num_labels)));
  std::vector<NodeId> frontier{t.root()};
  size_t made = 1;
  size_t fi = 0;
  while (made < n) {
    NodeId p = frontier[fi++];
    for (size_t j = 0; j < k && made < n; ++j) {
      frontier.push_back(
          t.AppendChild(p, static_cast<Label>(rng.Index(num_labels))));
      ++made;
    }
  }
  return t;
}

}  // namespace treenum
