#include "core/tree_enumerator.h"

#include <cassert>

namespace treenum {

namespace {

HomogenizedTva Prepare(const UnrankedTva& query) {
  TranslatedTva translated = TranslateUnrankedTva(query);
  return HomogenizeBinaryTva(translated.tva);
}

}  // namespace

TreeEnumerator::TreeEnumerator(UnrankedTree tree, const UnrankedTva& query,
                               BoxEnumMode mode)
    : homog_(Prepare(query)),
      enc_(std::move(tree), query.num_labels()),
      circuit_(&enc_.term(), &homog_.tva, &homog_.kind),
      index_(&circuit_),
      mode_(mode) {
  circuit_.BuildAll();
  if (mode_ == BoxEnumMode::kIndexed) index_.BuildAll();
}

std::vector<uint32_t> TreeEnumerator::FinalGamma() const {
  std::vector<uint32_t> gamma;
  TermNodeId root = enc_.term().root();
  const Box& box = circuit_.box(root);
  for (State q : homog_.tva.final_states()) {
    if (homog_.kind[q] == 1 && box.gamma[q] == GateKind::kUnion) {
      gamma.push_back(static_cast<uint32_t>(box.union_idx[q]));
    }
  }
  return gamma;
}

bool TreeEnumerator::EmptyAssignmentSatisfies() const {
  TermNodeId root = enc_.term().root();
  const Box& box = circuit_.box(root);
  for (State q : homog_.tva.final_states()) {
    if (homog_.kind[q] == 0 && box.gamma[q] == GateKind::kTop) return true;
  }
  return false;
}

TreeEnumerator::Cursor TreeEnumerator::Enumerate() const {
  Cursor c;
  c.emit_empty_ = EmptyAssignmentSatisfies();
  std::vector<uint32_t> gamma = FinalGamma();
  if (!gamma.empty()) {
    c.inner_ = std::make_unique<AssignmentCursor>(
        &circuit_, &index_, mode_, enc_.term().root(), std::move(gamma));
  }
  return c;
}

bool TreeEnumerator::Cursor::Next(Assignment* out) {
  if (emit_empty_) {
    emit_empty_ = false;
    *out = Assignment{};
    return true;
  }
  if (!inner_) return false;
  EnumOutput o;
  if (!inner_->Next(&o)) return false;
  *out = o.ToAssignment();
  return true;
}

size_t TreeEnumerator::Cursor::steps() const {
  return inner_ ? inner_->steps() : 0;
}

std::vector<Assignment> TreeEnumerator::EnumerateAll() const {
  std::vector<Assignment> out;
  Cursor c = Enumerate();
  Assignment a;
  while (c.Next(&a)) out.push_back(a);
  std::sort(out.begin(), out.end());
  return out;
}

bool TreeEnumerator::HasAnswer() const {
  if (EmptyAssignmentSatisfies()) return true;
  return !FinalGamma().empty();
}

void TreeEnumerator::EnableCounting() {
  if (counter_) return;
  counter_ = std::make_unique<RunCounter>(&circuit_);
  counter_->BuildAll();
}

uint64_t TreeEnumerator::AcceptingRuns() const {
  return counter_ ? counter_->TotalAcceptingRuns() : 0;
}

UpdateStats TreeEnumerator::ApplyUpdate(const UpdateResult& result) {
  for (TermNodeId id : result.freed) {
    circuit_.FreeBox(id);
    if (mode_ == BoxEnumMode::kIndexed) index_.FreeBoxIndex(id);
    if (counter_) counter_->FreeBoxCounts(id);
  }
  for (TermNodeId id : result.changed_bottom_up) {
    circuit_.RebuildBox(id);
    if (mode_ == BoxEnumMode::kIndexed) index_.RebuildBoxIndex(id);
    if (counter_) counter_->RebuildBoxCounts(id);
  }
  UpdateStats stats;
  stats.boxes_recomputed = result.changed_bottom_up.size();
  stats.rebuilt_size = result.rebuilt_size;
  return stats;
}

UpdateStats TreeEnumerator::Relabel(NodeId n, Label l) {
  return ApplyUpdate(enc_.Relabel(n, l));
}

UpdateStats TreeEnumerator::InsertFirstChild(NodeId n, Label l,
                                             NodeId* new_node) {
  return ApplyUpdate(enc_.InsertFirstChild(n, l, new_node));
}

UpdateStats TreeEnumerator::InsertRightSibling(NodeId n, Label l,
                                               NodeId* new_node) {
  return ApplyUpdate(enc_.InsertRightSibling(n, l, new_node));
}

UpdateStats TreeEnumerator::DeleteLeaf(NodeId n) {
  return ApplyUpdate(enc_.DeleteLeaf(n));
}

std::vector<std::vector<NodeId>> AssignmentsToTuples(
    const std::vector<Assignment>& assignments, size_t num_vars) {
  std::vector<std::vector<NodeId>> tuples;
  tuples.reserve(assignments.size());
  for (const Assignment& a : assignments) {
    std::vector<NodeId> tuple(num_vars, kNoNode);
    for (const Singleton& s : a.singletons()) {
      assert(s.var < num_vars && tuple[s.var] == kNoNode &&
             "assignment is not first-order");
      tuple[s.var] = s.node;
    }
    tuples.push_back(std::move(tuple));
  }
  return tuples;
}

}  // namespace treenum
