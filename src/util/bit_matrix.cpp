#include "util/bit_matrix.h"

#include <cassert>

#include "util/check.h"
#include "util/simd_kernels.h"

namespace treenum {

namespace {

// One guarded static lookup per call site; the table itself is resolved
// once per process (cpuid + TREENUM_SIMD, see util/simd_kernels.h).
const BitKernels& K() {
  static const BitKernels& k = ActiveKernels();
  return k;
}

#ifndef NDEBUG
// Debug check for the ComposeIntoWords aliasing precondition: the blocked
// kernel re-reads operand rows after writing `out`, so an overlapping
// destination silently corrupts the composition. Empty ranges never overlap.
bool WordRangesOverlap(const uint64_t* a, size_t a_words, const uint64_t* b,
                       size_t b_words) {
  if (a_words == 0 || b_words == 0) return false;
  return a < b + b_words && b < a + a_words;
}
#endif

}  // namespace

// ---------------------------------------------------------------- View

bool BitMatrixView::RowAny(size_t r) const {
  return K().any(Row(r), words_per_row_);
}

bool BitMatrixView::Any() const {
  return K().any(words_, rows_ * words_per_row_);
}

size_t BitMatrixView::Count() const {
  return K().popcount(words_, rows_ * words_per_row_);
}

void BitMatrixView::NonEmptyRowsInto(std::vector<uint32_t>* out) const {
  out->clear();
  for (size_t r = 0; r < rows_; ++r) {
    if (RowAny(r)) out->push_back(static_cast<uint32_t>(r));
  }
}

void BitMatrixView::ComposeIntoWords(const BitMatrixView& a,
                                     const BitMatrixView& b, uint64_t* out) {
  assert(a.cols() == b.rows());
#ifndef NDEBUG
  const size_t out_words = a.rows_ * b.words_per_row();
  TREENUM_CHECK(
      !WordRangesOverlap(out, out_words, a.words_, a.rows_ * a.words_per_row_),
      "ComposeIntoWords destination overlaps the left operand");
  TREENUM_CHECK(
      !WordRangesOverlap(out, out_words, b.words_,
                         b.rows_ * b.words_per_row_),
      "ComposeIntoWords destination overlaps the right operand");
#endif
  K().compose(a.words_, a.rows_, a.words_per_row_, b.words_, b.words_per_row(),
              out);
}

void BitMatrixView::ComposeInto(const BitMatrixView& other,
                                BitMatrix* result) const {
  // The kernel overwrites the whole destination block, so the reshape can
  // skip the zero-fill the old code paid through Assign.
  result->ReshapeUninit(rows_, other.cols());
  if (rows_ == 0 || other.cols() == 0) return;
  ComposeIntoWords(*this, other, result->MutableRow(0));
}

// -------------------------------------------------------------- Matrix

BitMatrix BitMatrix::Identity(size_t n) {
  BitMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.Set(i, i);
  return m;
}

void BitMatrix::Assign(size_t rows, size_t cols) {
  ReshapeUninit(rows, cols);
  K().zero(bits_.data(), bits_.size());
}

void BitMatrix::ReshapeUninit(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  words_per_row_ = (cols + 63) / 64;
  const size_t n = rows * words_per_row_;
  // Exact-capacity growth (reserve, not resize's geometric policy): cursor
  // buffers circulate between stack slots of different sizes, and the
  // steady-state allocation-freeness tests rely on capacities converging to
  // the per-slot maxima in a bounded number of passes. Retained words keep
  // stale values — callers overwrite or zero every word.
  if (n > bits_.capacity()) bits_.reserve(n);
  bits_.resize(n);
}

bool BitMatrix::RowAny(size_t r) const {
  return K().any(Row(r), words_per_row_);
}

bool BitMatrix::ColAny(size_t c) const {
  // Stride the column's word with a fixed mask — one word probe per row
  // instead of a bit test through Get (the analog of RowAny's word scan).
  // Strided single-word probes have nothing to vectorize, so this stays
  // outside the kernel table.
  const size_t cw = c / 64;
  const uint64_t mask = uint64_t{1} << (c % 64);
  for (size_t r = 0; r < rows_; ++r) {
    if (bits_[r * words_per_row_ + cw] & mask) return true;
  }
  return false;
}

bool BitMatrix::Any() const { return K().any(bits_.data(), bits_.size()); }

size_t BitMatrix::Count() const {
  return K().popcount(bits_.data(), bits_.size());
}

BitMatrix BitMatrix::Compose(const BitMatrixView& other) const {
  BitMatrix result;
  BitMatrixView(*this).ComposeInto(other, &result);
  return result;
}

void BitMatrix::ComposeInto(const BitMatrixView& other,
                            BitMatrix* result) const {
  assert(result != this);
  BitMatrixView(*this).ComposeInto(other, result);
}

void BitMatrix::UnionWith(const BitMatrixView& other) {
  assert(rows_ == other.rows() && cols_ == other.cols());
  if (bits_.empty()) return;
  K().or_into(bits_.data(), other.Row(0), bits_.size());
}

void BitMatrix::ZeroRowsNotIn(const std::vector<uint64_t>& keep) {
  for (size_t r = 0; r < rows_; ++r) {
    bool kept = r / 64 < keep.size() && ((keep[r / 64] >> (r % 64)) & 1u);
    if (!kept) K().zero(MutableRow(r), words_per_row_);
  }
}

std::vector<uint32_t> BitMatrix::NonEmptyRows() const {
  std::vector<uint32_t> out;
  for (size_t r = 0; r < rows_; ++r) {
    if (RowAny(r)) out.push_back(static_cast<uint32_t>(r));
  }
  return out;
}

void BitMatrix::NonEmptyRowsInto(std::vector<uint32_t>* out) const {
  BitMatrixView(*this).NonEmptyRowsInto(out);
}

std::vector<uint32_t> BitMatrix::NonEmptyCols() const {
  std::vector<uint32_t> out;
  std::vector<uint64_t> acc(words_per_row_, 0);
  for (size_t r = 0; r < rows_; ++r) {
    K().or_into(acc.data(), Row(r), words_per_row_);
  }
  for (size_t c = 0; c < cols_; ++c) {
    if ((acc[c / 64] >> (c % 64)) & 1u) out.push_back(static_cast<uint32_t>(c));
  }
  return out;
}

std::string BitMatrix::ToString() const {
  std::string s;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) s += Get(r, c) ? '1' : '0';
    s += '\n';
  }
  return s;
}

BitMatrix ComposeNaive(const BitMatrix& a, const BitMatrix& b) {
  assert(a.cols() == b.rows());
  BitMatrix result(a.rows(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t m = 0; m < a.cols(); ++m) {
      if (!a.Get(r, m)) continue;
      for (size_t c = 0; c < b.cols(); ++c) {
        if (b.Get(m, c)) result.Set(r, c);
      }
    }
  }
  return result;
}

}  // namespace treenum
