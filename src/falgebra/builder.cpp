#include "falgebra/builder.h"

#include <cassert>
#include <unordered_map>

namespace treenum {

namespace {

class PieceEncoder {
 public:
  PieceEncoder(Term& term, const UnrankedTree& tree,
               std::vector<TermNodeId>& leaf_of,
               std::vector<TermNodeId>* created)
      : term_(term), tree_(tree), leaf_of_(leaf_of), created_(created) {}

  TermNodeId Encode(const std::vector<Piece>& pieces) {
    for (const Piece& p : pieces) SizeDfs(p.root, p.hole_parent);
    return EncForest(pieces);
  }

 private:
  // csize_[n] = number of fragment nodes in n's subtree, where "fragment"
  // excludes everything strictly below the enclosing piece's hole parent.
  std::unordered_map<NodeId, uint32_t> csize_;

  void SizeDfs(NodeId root, NodeId hole_parent) {
    struct F {
      NodeId n;
      size_t ci;
      uint32_t acc;
    };
    std::vector<F> st{{root, 0, 1}};
    while (!st.empty()) {
      F& f = st.back();
      const auto& ch = tree_.children(f.n);
      if (f.n == hole_parent || f.ci >= ch.size()) {
        csize_[f.n] = f.acc;
        uint32_t a = f.acc;
        st.pop_back();
        if (!st.empty()) st.back().acc += a;
      } else {
        NodeId c = ch[f.ci++];
        st.push_back({c, 0, 1});
      }
    }
  }

  uint64_t PieceSize(const Piece& p) const {
    uint32_t r = csize_.at(p.root);
    if (!p.IsContext()) return r;
    return r - csize_.at(p.hole_parent) + 1;
  }

  TermNodeId MakeLeaf(bool ctx, NodeId n) {
    Label base = tree_.label(n);
    Label sym = ctx ? term_.alphabet().ContextLeaf(base)
                    : term_.alphabet().TreeLeaf(base);
    TermNodeId id = term_.NewLeaf(sym, n);
    leaf_of_[n] = id;
    if (created_) created_->push_back(id);
    return id;
  }

  TermNodeId MakeNode(TermOp op, TermNodeId l, TermNodeId r) {
    TermNodeId id = term_.NewNode(op, l, r);
    if (created_) created_->push_back(id);
    return id;
  }

  /// Concatenation with the operator dictated by operand types.
  TermNodeId Combine(TermNodeId l, TermNodeId r) {
    bool lc = term_.node(l).is_context;
    bool rc = term_.node(r).is_context;
    assert(!(lc && rc));
    TermOp op = lc ? TermOp::kConcatVH
                   : (rc ? TermOp::kConcatHV : TermOp::kConcatHH);
    return MakeNode(op, l, r);
  }

  TermNodeId EncForest(const std::vector<Piece>& pieces) {
    assert(!pieces.empty());
    if (pieces.size() == 1) return EncPiece(pieces[0]);

    uint64_t s = 0;
    for (const Piece& p : pieces) s += PieceSize(p);

    // Isolate a piece exceeding half the total (at most one exists).
    for (size_t i = 0; i < pieces.size(); ++i) {
      if (2 * PieceSize(pieces[i]) <= s) continue;
      TermNodeId mid = EncPiece(pieces[i]);
      if (i > 0) {
        std::vector<Piece> left(pieces.begin(), pieces.begin() + i);
        mid = Combine(EncForest(left), mid);
      }
      if (i + 1 < pieces.size()) {
        std::vector<Piece> right(pieces.begin() + i + 1, pieces.end());
        mid = Combine(mid, EncForest(right));
      }
      return mid;
    }

    // All pieces ≤ s/2: crossing split; both sides land in [s/4, 3s/4].
    uint64_t cum = 0;
    size_t j = 0;
    for (; j < pieces.size(); ++j) {
      uint64_t prev = cum;
      cum += PieceSize(pieces[j]);
      if (2 * cum >= s) {
        size_t split = (4 * prev >= s) ? j : j + 1;  // before or after j
        assert(split > 0 && split < pieces.size());
        std::vector<Piece> left(pieces.begin(), pieces.begin() + split);
        std::vector<Piece> right(pieces.begin() + split, pieces.end());
        return Combine(EncForest(left), EncForest(right));
      }
    }
    assert(false && "crossing point must exist");
    return kNoTerm;
  }

  TermNodeId EncPiece(const Piece& p) {
    if (!p.IsContext()) return EncTree(p.root);
    return EncContext(p.root, p.hole_parent);
  }

  TermNodeId EncTree(NodeId root) {
    uint64_t s = csize_.at(root);
    if (s == 1) return MakeLeaf(/*ctx=*/false, root);
    // v = deepest node with subtree size > s/2 (start at root, descend).
    NodeId v = root;
    while (true) {
      NodeId next = kNoNode;
      for (NodeId c : tree_.children(v)) {
        if (2 * static_cast<uint64_t>(csize_.at(c)) > s) {
          next = c;
          break;
        }
      }
      if (next == kNoNode) break;
      v = next;
    }
    TermNodeId ctx = (v == root) ? MakeLeaf(/*ctx=*/true, root)
                                 : EncContext(root, v);
    std::vector<Piece> kids;
    kids.reserve(tree_.children(v).size());
    for (NodeId c : tree_.children(v)) kids.push_back(Piece{c, kNoNode});
    assert(!kids.empty());
    return MakeNode(TermOp::kApplyVH, ctx, EncForest(kids));
  }

  TermNodeId EncContext(NodeId u, NodeId w) {
    if (u == w) return MakeLeaf(/*ctx=*/true, u);
    uint64_t m = csize_.at(u) - csize_.at(w) + 1;
    // x = deepest node on the hole path u→w whose child forest (within the
    // piece) exceeds m/2; y = x's child on the path.
    NodeId x = kNoNode;
    NodeId y_path = kNoNode;
    NodeId child = w;  // path-child of the node currently scanned
    for (NodeId y = tree_.parent(w);; y = tree_.parent(y)) {
      uint64_t cf = csize_.at(y) - csize_.at(w);
      if (2 * cf > m) {
        x = y;
        y_path = child;
        break;
      }
      if (y == u) break;
      child = y;
    }
    if (x == kNoNode) {
      // No hole-path node's child forest exceeds m/2 (e.g. m == 2):
      // split directly below u.
      x = u;
      y_path = child;
    }
    TermNodeId c1 =
        (x == u) ? MakeLeaf(/*ctx=*/true, u) : EncContext(u, x);
    std::vector<Piece> kids;
    kids.reserve(tree_.children(x).size());
    for (NodeId c : tree_.children(x)) {
      if (c == y_path) {
        kids.push_back(Piece{c, w});
      } else {
        kids.push_back(Piece{c, kNoNode});
      }
    }
    assert(!kids.empty());
    return MakeNode(TermOp::kApplyVV, c1, EncForest(kids));
  }

  Term& term_;
  const UnrankedTree& tree_;
  std::vector<TermNodeId>& leaf_of_;
  std::vector<TermNodeId>* created_;
};

}  // namespace

TermNodeId EncodePieces(Term& term, const UnrankedTree& tree,
                        const std::vector<Piece>& pieces,
                        std::vector<TermNodeId>& leaf_of,
                        std::vector<TermNodeId>* created) {
  if (leaf_of.size() < tree.id_bound()) {
    leaf_of.resize(tree.id_bound(), kNoTerm);
  }
  PieceEncoder enc(term, tree, leaf_of, created);
  return enc.Encode(pieces);
}

Encoding EncodeTree(UnrankedTree tree, size_t num_base_labels) {
  Encoding e(std::move(tree), TermAlphabet(num_base_labels));
  e.leaf_of.assign(e.tree.id_bound(), kNoTerm);
  TermNodeId root = EncodePieces(e.term, e.tree,
                                 {Piece{e.tree.root(), kNoNode}}, e.leaf_of);
  e.term.set_root(root);
  return e;
}

uint32_t MaxAllowedHeight(uint32_t size) {
  uint32_t lg = 0;
  while ((uint32_t{1} << (lg + 1)) <= size) ++lg;
  return kBalanceC * lg + kBalanceK;
}

std::vector<Piece> CollectPieces(const Term& term, TermNodeId id) {
  const TermNode& t = term.node(id);
  const TermAlphabet& alphabet = term.alphabet();
  if (t.left == kNoTerm) {
    if (alphabet.IsContextLeaf(t.label)) {
      return {Piece{t.tree_node, t.tree_node}};
    }
    return {Piece{t.tree_node, kNoNode}};
  }
  std::vector<Piece> left = CollectPieces(term, t.left);
  TermOp op = alphabet.OpOf(t.label);
  if (op == TermOp::kConcatHH || op == TermOp::kConcatHV ||
      op == TermOp::kConcatVH) {
    std::vector<Piece> right = CollectPieces(term, t.right);
    left.insert(left.end(), right.begin(), right.end());
    return left;
  }
  // Apply (⊙VV / ⊙VH): the left context's hole is filled by the right term;
  // its pieces are absorbed below the hole parent. For ⊙VV the combined
  // piece keeps the right side's hole.
  size_t ctx_idx = left.size();
  for (size_t i = 0; i < left.size(); ++i) {
    if (left[i].IsContext()) {
      ctx_idx = i;
      break;
    }
  }
  assert(ctx_idx < left.size());
  if (op == TermOp::kApplyVV) {
    std::vector<Piece> right = CollectPieces(term, t.right);
    NodeId inner_hole = kNoNode;
    for (const Piece& p : right) {
      if (p.IsContext()) inner_hole = p.hole_parent;
    }
    assert(inner_hole != kNoNode);
    left[ctx_idx].hole_parent = inner_hole;
  } else {
    left[ctx_idx].hole_parent = kNoNode;
  }
  return left;
}

}  // namespace treenum
