// Tree variable automata on binary trees (§2 of the paper).
//
// A Λ,X-TVA is A = (Q, ι, δ, F) where ι ⊆ Λ × 2^X × Q is the initial
// (leaf) relation and δ ⊆ Λ × Q × Q × Q the transition relation for internal
// nodes. Annotations (sets of variables) are read on leaves only.
//
// These automata run on the binary forest-algebra terms produced by the
// encoding of §7, but are defined for arbitrary binary trees, so they can be
// built and tested independently of the forest-algebra layer.
#ifndef TREENUM_AUTOMATA_BINARY_TVA_H_
#define TREENUM_AUTOMATA_BINARY_TVA_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "trees/assignment.h"

namespace treenum {

using State = uint32_t;

/// A set of variables encoded as a bitmask over VarIds (at most 31 vars).
using VarMask = uint32_t;

/// A leaf initializer (l, Y, q) ∈ ι: on a leaf labeled l annotated with the
/// variable set Y, the automaton may assume state q.
struct LeafInit {
  Label label;
  VarMask vars;
  State state;
  friend bool operator==(const LeafInit& a, const LeafInit& b) {
    return a.label == b.label && a.vars == b.vars && a.state == b.state;
  }
};

/// An internal transition (l, q1, q2, q) ∈ δ: on an internal node labeled l
/// whose children carry states q1 (left) and q2 (right), the automaton may
/// assume state q.
struct Transition {
  Label label;
  State left;
  State right;
  State state;
  friend bool operator==(const Transition& a, const Transition& b) {
    return a.label == b.label && a.left == b.left && a.right == b.right &&
           a.state == b.state;
  }
};

/// One live (left, right) child-state pair of δ restricted to a label; its
/// result states are delta_results()[begin..end) in insertion order.
struct DeltaGroup {
  State left;
  State right;
  uint32_t begin;
  uint32_t end;
};

/// A nondeterministic tree variable automaton on binary Λ-trees.
class BinaryTva {
 public:
  BinaryTva(size_t num_states, size_t num_labels, size_t num_vars)
      : num_states_(num_states),
        num_labels_(num_labels),
        num_vars_(num_vars) {}
  /// An empty automaton (no states, labels or variables) — the staging
  /// value deserialization (automata/serialize.h) parses into.
  BinaryTva() : BinaryTva(0, 0, 0) {}

  size_t num_states() const { return num_states_; }
  size_t num_labels() const { return num_labels_; }
  size_t num_vars() const { return num_vars_; }

  /// |A| = |Q| + |ι| + |δ| as in the paper.
  size_t size() const {
    return num_states_ + leaf_inits_.size() + transitions_.size();
  }

  void AddLeafInit(Label l, VarMask vars, State q);
  void AddTransition(Label l, State left, State right, State q);
  void AddFinal(State q);

  const std::vector<LeafInit>& leaf_inits() const { return leaf_inits_; }
  const std::vector<Transition>& transitions() const { return transitions_; }
  const std::vector<State>& final_states() const { return final_states_; }
  bool IsFinal(State q) const;

  /// All (vars, state) pairs of ι entries for leaf label l.
  const std::vector<std::pair<VarMask, State>>& LeafInitsFor(Label l) const;

  /// All result states q with (l, q1, q2, q) ∈ δ.
  const std::vector<State>& TransitionsFor(Label l, State q1, State q2) const;

  /// All transitions with label l, grouped arbitrarily (for full scans).
  const std::vector<Transition>& TransitionsForLabel(Label l) const;

  /// Grouped-CSR view of δ restricted to label l: one DeltaGroup per live
  /// (left, right) pair, sorted by (left, right), with result states flat in
  /// delta_results(). Iterating groups in order and results within each group
  /// visits exactly the triples the nested TransitionsFor scan would, in the
  /// same order — consumers replacing that scan stay bit-identical.
  const std::vector<DeltaGroup>& DeltaGroupsFor(Label l) const;
  const std::vector<State>& delta_results() const {
    EnsureDeltaGroups();
    return delta_results_;
  }

  /// Builds the grouped-CSR cache if any AddTransition invalidated it. Called
  /// lazily by DeltaGroupsFor; call it eagerly before handing the automaton
  /// to concurrent readers (the cache mutates on first access).
  void EnsureDeltaGroups() const;

  std::string ToString() const;

 private:
  size_t num_states_;
  size_t num_labels_;
  size_t num_vars_;

  std::vector<LeafInit> leaf_inits_;
  std::vector<Transition> transitions_;
  std::vector<State> final_states_;
  std::vector<bool> is_final_;

  // Lookup structures.
  std::vector<std::vector<std::pair<VarMask, State>>> leaf_inits_by_label_;
  std::vector<std::vector<Transition>> transitions_by_label_;
  // Key: (label * num_states + q1) * num_states + q2.
  std::unordered_map<uint64_t, std::vector<State>> delta_lookup_;

  // Grouped-CSR cache over δ (see DeltaGroupsFor); rebuilt on demand after
  // AddTransition marks it dirty.
  mutable std::vector<std::vector<DeltaGroup>> delta_groups_by_label_;
  mutable std::vector<State> delta_results_;
  mutable bool delta_groups_dirty_ = true;

  static const std::vector<std::pair<VarMask, State>> kEmptyLeafInits;
  static const std::vector<State> kEmptyStates;
  static const std::vector<Transition> kEmptyTransitions;
  static const std::vector<DeltaGroup> kEmptyGroups;
};

}  // namespace treenum

#endif  // TREENUM_AUTOMATA_BINARY_TVA_H_
