// Homogenization (Lemma 2.1) and trimming of binary TVAs.
//
// A state q is a 0-state if some run reaches it at the root of a tree under
// the empty valuation, and a 1-state if some run reaches it under a valuation
// with at least one non-empty annotation. An automaton is homogenized if
// every state is a 0-state xor a 1-state. The circuit construction of
// Lemma 3.7 requires a homogenized automaton: it is what guarantees that no
// gate captures both the empty assignment and a non-empty one, which in turn
// lets the construction avoid ⊤-gates as inputs.
#ifndef TREENUM_AUTOMATA_HOMOGENIZE_H_
#define TREENUM_AUTOMATA_HOMOGENIZE_H_

#include <cstdint>
#include <vector>

#include "automata/binary_tva.h"

namespace treenum {

/// Per-state reachability kinds, computed by fixpoint (test oracle and
/// homogenization checker).
struct StateKinds {
  std::vector<bool> zero_state;  ///< q is a 0-state.
  std::vector<bool> one_state;   ///< q is a 1-state.
};

/// Computes which states are 0-states / 1-states by a least fixpoint over ι
/// and δ. A state reachable by no run at all is neither.
StateKinds ComputeStateKinds(const BinaryTva& a);

/// True iff every state of `a` is a 0-state xor a 1-state.
bool IsHomogenized(const BinaryTva& a);

/// Removes states that are not bottom-up reachable by any run, renumbering
/// the remainder. If `old_to_new` is non-null it receives the renumbering
/// (kNoState for removed states).
inline constexpr State kNoState = static_cast<State>(-1);
BinaryTva TrimBinaryTva(const BinaryTva& a,
                        std::vector<State>* old_to_new = nullptr);

/// Result of homogenization: the equivalent homogenized (and trimmed)
/// automaton plus, for each new state, whether it is a 1-state.
struct HomogenizedTva {
  BinaryTva tva;
  /// kind[q] == 1 iff q is a 1-state (reachable only with some non-empty
  /// annotation below); kind[q] == 0 iff q is a 0-state.
  std::vector<uint8_t> kind;
};

/// Lemma 2.1: product of `a` with the two-state automaton remembering
/// whether a non-empty annotation has been read, followed by trimming.
/// Equivalent to `a` (same satisfying valuations on every tree).
HomogenizedTva HomogenizeBinaryTva(const BinaryTva& a);

// ---- Canonical form and fingerprints (query dedupe) ----
//
// The shared-document query registry (core/document.h) maps every
// registered query to a canonical homogenized automaton: textually
// different queries that homogenize to the same automaton share one
// pipeline. Canonicalization renumbers states deterministically (iterated
// signature refinement over iota/delta/F/kind — a 1-dimensional
// Weisfeiler-Leman pass) and sorts the relation vectors, so automata that
// differ only in state numbering or declaration order produce identical
// canonical forms. Residual refinement ties fall back to the incoming
// numbering, which makes the scheme *sound* (equal canonical forms are
// literally equal automata) but not *complete* (isomorphic automata with
// nontrivial automorphisms may keep distinct forms — they are then served
// by distinct pipelines, costing memory but never correctness).

/// splitmix64 finalizer — the hash primitive behind every automaton
/// fingerprint in this layer (homogenized, unranked, word).
inline uint64_t FingerprintMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent fold of `v` into the running fingerprint `h`.
inline uint64_t FingerprintCombine(uint64_t h, uint64_t v) {
  return FingerprintMix(h ^ FingerprintMix(v));
}

/// Rewrites `a` in place into its canonical form: states renumbered by
/// signature refinement, leaf inits / transitions / final states sorted.
/// Preserves semantics exactly (same runs, same satisfying valuations,
/// same run multiplicities — duplicate relation entries are kept).
void CanonicalizeHomogenizedTva(HomogenizedTva* a);

/// 64-bit structural fingerprint of `a` exactly as given (sizes, kinds and
/// every relation entry in order). Canonicalize first to make it invariant
/// under state renumbering and declaration order. Used as the registry
/// hash key; equality is always confirmed with HomogenizedTvaEqual.
uint64_t FingerprintHomogenizedTva(const HomogenizedTva& a);

/// Exact structural equality (sizes, kind vector, and the leaf-init /
/// transition / final-state vectors element for element). Meaningful as an
/// automaton-identity test only on canonical forms.
bool HomogenizedTvaEqual(const HomogenizedTva& a, const HomogenizedTva& b);

}  // namespace treenum

#endif  // TREENUM_AUTOMATA_HOMOGENIZE_H_
