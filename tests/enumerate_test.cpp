#include "enumeration/enumerate.h"

#include <gtest/gtest.h>

#include <set>

#include "automata/homogenize.h"
#include "circuit/assignment_circuit.h"
#include "enumeration/simple_enum.h"
#include "test_util.h"

namespace treenum {
namespace {

struct HHPipeline {
  HomogenizedTva h;
  Term term;
  AssignmentCircuit circuit;
  EnumIndex index;

  HHPipeline(const BinaryTva& raw, Rng& rng, size_t leaves, size_t labels)
      : h(HomogenizeBinaryTva(raw)),
        term(TermAlphabet{labels}),
        circuit(&term, &h.tva, &h.kind),
        index(&circuit) {
    term.set_root(BuildRandomHHTerm(term, rng, leaves, labels));
    circuit.BuildAll();
    index.BuildAll();
  }

  // All boxed sets of 1-state union gates at the root.
  std::vector<uint32_t> RootGamma() const {
    std::vector<uint32_t> g;
    const Box& b = circuit.box(term.root());
    for (size_t u = 0; u < b.num_unions(); ++u) {
      if (h.kind[b.union_state(u)] == 1) {
        g.push_back(static_cast<uint32_t>(u));
      }
    }
    return g;
  }
};

// Expected S(Γ) via circuit materialization.
std::vector<Assignment> ExpectedOfGamma(const HHPipeline& p,
                                        const std::vector<uint32_t>& gamma) {
  std::set<Assignment> all;
  const Box& b = p.circuit.box(p.term.root());
  for (uint32_t u : gamma) {
    std::set<Assignment> s =
        MaterializeGamma(p.circuit, p.term.root(), b.union_state(u));
    all.insert(s.begin(), s.end());
  }
  return {all.begin(), all.end()};
}

TEST(Enumerate, IndexedMatchesMaterializationNoDuplicates) {
  Rng rng(111);
  for (int trial = 0; trial < 40; ++trial) {
    BinaryTva raw = RandomBinaryTvaOnHH(rng, 3, 2, 1, 4, 9);
    HHPipeline p(raw, rng, 1 + rng.Index(8), 2);
    std::vector<uint32_t> gamma = p.RootGamma();
    if (gamma.empty()) continue;
    AssignmentCursor cursor(&p.circuit, &p.index, BoxEnumMode::kIndexed,
                            p.term.root(), gamma);
    std::vector<Assignment> got;
    EnumOutput o;
    while (cursor.Next(&o)) got.push_back(o.ToAssignment());
    // No duplicates.
    std::vector<Assignment> sorted = got;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end())
        << "duplicate produced, trial " << trial;
    EXPECT_EQ(sorted, ExpectedOfGamma(p, gamma)) << "trial " << trial;
  }
}

TEST(Enumerate, NaiveModeProducesSameSet) {
  Rng rng(113);
  for (int trial = 0; trial < 30; ++trial) {
    BinaryTva raw = RandomBinaryTvaOnHH(rng, 3, 2, 2, 5, 9);
    HHPipeline p(raw, rng, 1 + rng.Index(7), 2);
    std::vector<uint32_t> gamma = p.RootGamma();
    if (gamma.empty()) continue;
    AssignmentCursor indexed(&p.circuit, &p.index, BoxEnumMode::kIndexed,
                             p.term.root(), gamma);
    AssignmentCursor naive(&p.circuit, nullptr, BoxEnumMode::kNaive,
                           p.term.root(), gamma);
    EXPECT_EQ(CollectAll(indexed), CollectAll(naive)) << "trial " << trial;
  }
}

TEST(Enumerate, ProvenanceIsCorrect) {
  // Prov(S, Γ) = {g ∈ Γ | S ∈ S(g)} (Theorem 5.3).
  Rng rng(127);
  for (int trial = 0; trial < 25; ++trial) {
    BinaryTva raw = RandomBinaryTvaOnHH(rng, 3, 2, 1, 4, 8);
    HHPipeline p(raw, rng, 1 + rng.Index(6), 2);
    std::vector<uint32_t> gamma = p.RootGamma();
    if (gamma.empty()) continue;
    // Materialize per-gate sets.
    const Box& b = p.circuit.box(p.term.root());
    std::vector<std::set<Assignment>> per_gate;
    for (uint32_t u : gamma) {
      per_gate.push_back(
          MaterializeGamma(p.circuit, p.term.root(), b.union_state(u)));
    }
    AssignmentCursor cursor(&p.circuit, &p.index, BoxEnumMode::kIndexed,
                            p.term.root(), gamma);
    EnumOutput o;
    while (cursor.Next(&o)) {
      Assignment a = o.ToAssignment();
      for (size_t i = 0; i < gamma.size(); ++i) {
        bool in_prov =
            (o.provenance[i / 64] >> (i % 64)) & 1u;
        bool in_set = per_gate[i].count(a) > 0;
        EXPECT_EQ(in_prov, in_set)
            << "trial " << trial << " gate " << i << " a " << a.ToString();
      }
    }
  }
}

TEST(Enumerate, SingletonGammaSubsets) {
  // Enumerating each singleton {g} yields exactly S(g).
  Rng rng(131);
  for (int trial = 0; trial < 20; ++trial) {
    BinaryTva raw = RandomBinaryTvaOnHH(rng, 3, 2, 1, 4, 8);
    HHPipeline p(raw, rng, 1 + rng.Index(6), 2);
    const Box& b = p.circuit.box(p.term.root());
    for (size_t u = 0; u < b.num_unions(); ++u) {
      if (p.h.kind[b.union_state(u)] != 1) continue;
      AssignmentCursor cursor(&p.circuit, &p.index, BoxEnumMode::kIndexed,
                              p.term.root(),
                              {static_cast<uint32_t>(u)});
      std::set<Assignment> expected =
          MaterializeGamma(p.circuit, p.term.root(), b.union_state(u));
      std::vector<Assignment> want(expected.begin(), expected.end());
      EXPECT_EQ(CollectAll(cursor), want);
    }
  }
}

TEST(SimpleEnum, SameSetWithDuplicatesAllowed) {
  Rng rng(137);
  for (int trial = 0; trial < 25; ++trial) {
    BinaryTva raw = RandomBinaryTvaOnHH(rng, 3, 2, 1, 4, 8);
    HHPipeline p(raw, rng, 1 + rng.Index(6), 2);
    std::vector<uint32_t> gamma = p.RootGamma();
    if (gamma.empty()) continue;
    std::vector<Assignment> dupes =
        SimpleEnumerateAll(p.circuit, p.term.root(), gamma);
    std::sort(dupes.begin(), dupes.end());
    size_t with_dupes = dupes.size();
    dupes.erase(std::unique(dupes.begin(), dupes.end()), dupes.end());
    EXPECT_EQ(dupes, ExpectedOfGamma(p, gamma)) << "trial " << trial;
    EXPECT_GE(with_dupes, dupes.size());
  }
}

TEST(Enumerate, DelayStepsIndependentOfDepthOnPathChains) {
  // A long ⊕HH chain where only the far end has non-empty annotations:
  // the indexed cursor's per-answer step count must not grow with the chain
  // length, the naive one does.
  TermAlphabet alphabet(2);
  BinaryTva raw(2, alphabet.num_labels(), 1);
  // label 0 leaves: only empty annotation, state 0 (will homogenize to a
  // 0-state); label 1 leaf: annotated, state 1.
  raw.AddLeafInit(alphabet.TreeLeaf(0), 0, 0);
  raw.AddLeafInit(alphabet.TreeLeaf(1), 1, 1);
  raw.AddLeafInit(alphabet.TreeLeaf(1), 0, 0);
  Label op = alphabet.Op(TermOp::kConcatHH);
  raw.AddTransition(op, 0, 0, 0);
  raw.AddTransition(op, 0, 1, 1);
  raw.AddTransition(op, 1, 0, 1);
  raw.AddFinal(1);
  HomogenizedTva h = HomogenizeBinaryTva(raw);

  auto run = [&](size_t chain, BoxEnumMode mode) -> size_t {
    Term term(TermAlphabet{2});
    // left-deep chain: (((x ⊕ a) ⊕ a) ⊕ a) ... with x the annotated leaf.
    TermNodeId cur = term.NewLeaf(alphabet.TreeLeaf(1), 0);
    for (size_t i = 0; i < chain; ++i) {
      TermNodeId pad =
          term.NewLeaf(alphabet.TreeLeaf(0), static_cast<NodeId>(i + 1));
      cur = term.NewNode(TermOp::kConcatHH, cur, pad);
    }
    term.set_root(cur);
    AssignmentCircuit circuit(&term, &h.tva, &h.kind);
    circuit.BuildAll();
    EnumIndex index(&circuit);
    index.BuildAll();
    const Box& b = circuit.box(term.root());
    std::vector<uint32_t> gamma;
    for (size_t u = 0; u < b.num_unions(); ++u) {
      if (h.kind[b.union_state(u)] == 1) {
        gamma.push_back(static_cast<uint32_t>(u));
      }
    }
    AssignmentCursor cursor(&circuit, &index, mode, term.root(), gamma);
    EnumOutput o;
    size_t count = 0;
    while (cursor.Next(&o)) ++count;
    EXPECT_EQ(count, 1u);
    return cursor.steps();
  };

  size_t indexed_short = run(16, BoxEnumMode::kIndexed);
  size_t indexed_long = run(1024, BoxEnumMode::kIndexed);
  size_t naive_short = run(16, BoxEnumMode::kNaive);
  size_t naive_long = run(1024, BoxEnumMode::kNaive);
  // Indexed: constant-ish. Naive: grows linearly with the chain.
  EXPECT_LE(indexed_long, indexed_short + 8);
  EXPECT_GE(naive_long, naive_short + 500);
}

}  // namespace
}  // namespace treenum
