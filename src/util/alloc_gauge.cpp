#include "util/alloc_gauge.h"

#include <atomic>

namespace treenum {
namespace {

// Constant-initialized so counting is valid during static initialization.
std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_frees{0};
std::atomic<uint64_t> g_bytes{0};
std::atomic<bool> g_active{false};

}  // namespace

bool AllocGaugeActive() { return g_active.load(std::memory_order_relaxed); }
uint64_t AllocCount() { return g_allocs.load(std::memory_order_relaxed); }
uint64_t FreeCount() { return g_frees.load(std::memory_order_relaxed); }
uint64_t AllocBytes() { return g_bytes.load(std::memory_order_relaxed); }

namespace internal {

void RecordAlloc(size_t bytes) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void RecordFree() { g_frees.fetch_add(1, std::memory_order_relaxed); }

bool MarkGaugeActive() {
  g_active.store(true, std::memory_order_relaxed);
  return true;
}

}  // namespace internal
}  // namespace treenum
