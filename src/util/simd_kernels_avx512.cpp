// AVX-512 kernel tier (F+BW+DQ+VL). This TU is compiled with the matching
// -mavx512* flags (see CMakeLists.txt); without them the guard compiles it
// down to a null entry point and the dispatcher never offers the tier.
#include "util/simd_kernels.h"
#include "util/simd_kernels_common.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512DQ__) && \
    defined(__AVX512VL__)
#include <immintrin.h>

namespace treenum {
namespace internal {
namespace {

void OrIntoAvx512(uint64_t* dst, const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m512i v0 = _mm512_or_si512(_mm512_loadu_si512(dst + i),
                                 _mm512_loadu_si512(src + i));
    __m512i v1 = _mm512_or_si512(_mm512_loadu_si512(dst + i + 8),
                                 _mm512_loadu_si512(src + i + 8));
    __m512i v2 = _mm512_or_si512(_mm512_loadu_si512(dst + i + 16),
                                 _mm512_loadu_si512(src + i + 16));
    __m512i v3 = _mm512_or_si512(_mm512_loadu_si512(dst + i + 24),
                                 _mm512_loadu_si512(src + i + 24));
    _mm512_storeu_si512(dst + i, v0);
    _mm512_storeu_si512(dst + i + 8, v1);
    _mm512_storeu_si512(dst + i + 16, v2);
    _mm512_storeu_si512(dst + i + 24, v3);
  }
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_si512(dst + i,
                        _mm512_or_si512(_mm512_loadu_si512(dst + i),
                                        _mm512_loadu_si512(src + i)));
  }
  if (i < n) {
    const __mmask8 m = static_cast<__mmask8>((1u << (n - i)) - 1);
    __m512i d = _mm512_maskz_loadu_epi64(m, dst + i);
    __m512i s = _mm512_maskz_loadu_epi64(m, src + i);
    _mm512_mask_storeu_epi64(dst + i, m, _mm512_or_si512(d, s));
  }
}

bool AnyAvx512(const uint64_t* words, size_t n) {
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m512i v = _mm512_or_si512(
        _mm512_or_si512(_mm512_loadu_si512(words + i),
                        _mm512_loadu_si512(words + i + 8)),
        _mm512_or_si512(_mm512_loadu_si512(words + i + 16),
                        _mm512_loadu_si512(words + i + 24)));
    if (_mm512_test_epi64_mask(v, v) != 0) return true;
  }
  for (; i + 8 <= n; i += 8) {
    __m512i v = _mm512_loadu_si512(words + i);
    if (_mm512_test_epi64_mask(v, v) != 0) return true;
  }
  if (i < n) {
    const __mmask8 m = static_cast<__mmask8>((1u << (n - i)) - 1);
    __m512i v = _mm512_maskz_loadu_epi64(m, words + i);
    if (_mm512_test_epi64_mask(v, v) != 0) return true;
  }
  return false;
}

// Streaming compose for b_wpr == 2: one destination row at a time with a
// single xmm accumulator — one 16-byte load and one OR per set bit.
void ComposeStream2Avx512(const uint64_t* a, size_t a_rows, size_t a_wpr,
                          const uint64_t* b, uint64_t* out) {
  for (size_t r = 0; r < a_rows; ++r) {
    const uint64_t* row = a + r * a_wpr;
    __m128i acc = _mm_setzero_si128();
    for (size_t w = 0; w < a_wpr; ++w) {
      uint64_t bits = row[w];
      const uint64_t* bbase = b + (w * 64) * 2;
      while (bits) {
        const size_t j = static_cast<size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        acc = _mm_or_si128(
            acc, _mm_loadu_si128(
                     reinterpret_cast<const __m128i*>(bbase + j * 2)));
      }
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + r * 2), acc);
  }
}

// Streaming compose for moderate widths (b_wpr <= 8 * NV): one destination
// row at a time across NV zmm accumulators, the tail vector masked. One
// load + one OR per set bit per vector; no per-row masking.
template <size_t NV>
void ComposeStreamAvx512(const uint64_t* a, size_t a_rows, size_t a_wpr,
                         const uint64_t* b, size_t b_wpr, uint64_t* out) {
  const size_t rem = b_wpr - 8 * (NV - 1);  // tail words, 1..8
  const bool tail_full = rem == 8;
  const __mmask8 tailmask = static_cast<__mmask8>((1u << rem) - 1);
  for (size_t r = 0; r < a_rows; ++r) {
    const uint64_t* row = a + r * a_wpr;
    __m512i acc[NV];
    for (size_t v = 0; v < NV; ++v) acc[v] = _mm512_setzero_si512();
    for (size_t w = 0; w < a_wpr; ++w) {
      uint64_t bits = row[w];
      const uint64_t* bbase = b + (w * 64) * b_wpr;
      while (bits) {
        const size_t j = static_cast<size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        const uint64_t* brow = bbase + j * b_wpr;
        for (size_t v = 0; v + 1 < NV; ++v) {
          acc[v] = _mm512_or_si512(acc[v], _mm512_loadu_si512(brow + 8 * v));
        }
        const uint64_t* tp = brow + 8 * (NV - 1);
        acc[NV - 1] = _mm512_or_si512(
            acc[NV - 1], tail_full ? _mm512_loadu_si512(tp)
                                   : _mm512_maskz_loadu_epi64(tailmask, tp));
      }
    }
    uint64_t* o = out + r * b_wpr;
    for (size_t v = 0; v + 1 < NV; ++v) {
      _mm512_storeu_si512(o + 8 * v, acc[v]);
    }
    uint64_t* op = o + 8 * (NV - 1);
    if (tail_full) {
      _mm512_storeu_si512(op, acc[NV - 1]);
    } else {
      _mm512_mask_storeu_epi64(op, tailmask, acc[NV - 1]);
    }
  }
}

// Register-blocked compose for wide b (b_wpr > 32), same scheme as the AVX2
// tier but with one 8-word (512-bit) column tile per pass and masked
// loads/stores for the partial tail tile.
void ComposeBlockedAvx512(const uint64_t* a, size_t a_rows, size_t a_wpr,
                          const uint64_t* b, size_t b_wpr, uint64_t* out) {
  constexpr size_t kTile = 8;
  for (size_t r0 = 0; r0 < a_rows; r0 += kBlockRows) {
    const size_t nr = a_rows - r0 < kBlockRows ? a_rows - r0 : kBlockRows;
    const uint64_t* arow[kBlockRows];
    for (size_t k = 0; k < kBlockRows; ++k) {
      arow[k] = a + (r0 + (k < nr ? k : 0)) * a_wpr;
    }
    for (size_t t0 = 0; t0 < b_wpr; t0 += kTile) {
      const size_t nt = b_wpr - t0 < kTile ? b_wpr - t0 : kTile;
      const bool full = nt == kTile;
      const __mmask8 lanemask = static_cast<__mmask8>((1u << nt) - 1);
      __m512i acc[kBlockRows] = {
          _mm512_setzero_si512(), _mm512_setzero_si512(),
          _mm512_setzero_si512(), _mm512_setzero_si512()};
      for (size_t w = 0; w < a_wpr; ++w) {
        const uint64_t w0 = arow[0][w], w1 = arow[1][w];
        const uint64_t w2 = arow[2][w], w3 = arow[3][w];
        uint64_t live = w0 | w1 | w2 | w3;
        const uint64_t* bbase = b + (w * 64) * b_wpr + t0;
        while (live) {
          const size_t j = static_cast<size_t>(__builtin_ctzll(live));
          live &= live - 1;
          const uint64_t* brow = bbase + j * b_wpr;
          const __m512i bv = full ? _mm512_loadu_si512(brow)
                                  : _mm512_maskz_loadu_epi64(lanemask, brow);
          acc[0] = _mm512_or_si512(
              acc[0], _mm512_and_si512(
                          bv, _mm512_set1_epi64(
                                  -static_cast<long long>((w0 >> j) & 1))));
          acc[1] = _mm512_or_si512(
              acc[1], _mm512_and_si512(
                          bv, _mm512_set1_epi64(
                                  -static_cast<long long>((w1 >> j) & 1))));
          acc[2] = _mm512_or_si512(
              acc[2], _mm512_and_si512(
                          bv, _mm512_set1_epi64(
                                  -static_cast<long long>((w2 >> j) & 1))));
          acc[3] = _mm512_or_si512(
              acc[3], _mm512_and_si512(
                          bv, _mm512_set1_epi64(
                                  -static_cast<long long>((w3 >> j) & 1))));
        }
      }
      for (size_t k = 0; k < nr; ++k) {
        uint64_t* o = out + (r0 + k) * b_wpr + t0;
        if (full) {
          _mm512_storeu_si512(o, acc[k]);
        } else {
          _mm512_mask_storeu_epi64(o, lanemask, acc[k]);
        }
      }
    }
  }
}

void ComposeAvx512(const uint64_t* a, size_t a_rows, size_t a_wpr,
                   const uint64_t* b, size_t b_wpr, uint64_t* out) {
  if (a_rows == 0 || b_wpr == 0) return;
  if (a_wpr == 0) {
    ZeroWords(out, a_rows * b_wpr);
    return;
  }
  if (b_wpr == 1) {
    // Single-GPR destination rows: the scalar TU's gather loop wins (the
    // same code compiled under -mavx512* picks up slower codegen).
    ScalarKernels().compose(a, a_rows, a_wpr, b, b_wpr, out);
  } else if (b_wpr == 2) {
    ComposeStream2Avx512(a, a_rows, a_wpr, b, out);
  } else if (b_wpr <= 8) {
    ComposeStreamAvx512<1>(a, a_rows, a_wpr, b, b_wpr, out);
  } else if (b_wpr <= 16) {
    ComposeStreamAvx512<2>(a, a_rows, a_wpr, b, b_wpr, out);
  } else if (b_wpr <= 24) {
    ComposeStreamAvx512<3>(a, a_rows, a_wpr, b, b_wpr, out);
  } else if (b_wpr <= 32) {
    ComposeStreamAvx512<4>(a, a_rows, a_wpr, b, b_wpr, out);
  } else {
    ComposeBlockedAvx512(a, a_rows, a_wpr, b, b_wpr, out);
  }
}

}  // namespace

const BitKernels* Avx512KernelsOrNull() {
  static const BitKernels k = {&OrIntoAvx512,  &ZeroWords,     &AnyAvx512,
                               &PopcountWords, &ComposeAvx512, "avx512"};
  return &k;
}

}  // namespace internal
}  // namespace treenum

#else  // missing one of the AVX-512 F/BW/DQ/VL ISA macros

namespace treenum {
namespace internal {
const BitKernels* Avx512KernelsOrNull() { return nullptr; }
}  // namespace internal
}  // namespace treenum

#endif
