#include "falgebra/word_avl.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace treenum {
namespace {

Word MakeWord(const std::string& s) {
  Word w;
  for (char c : s) w.push_back(static_cast<Label>(c - 'a'));
  return w;
}

TEST(WordAvl, BuildAndRead) {
  WordEncoding enc(MakeWord("abcab"), 3);
  EXPECT_EQ(enc.size(), 5u);
  EXPECT_EQ(enc.term().Validate(), "");
  EXPECT_EQ(enc.Current(), MakeWord("abcab"));
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(enc.LetterAt(i), MakeWord("abcab")[i]);
    EXPECT_EQ(enc.PositionOf(enc.PositionId(i)), i);
  }
}

TEST(WordAvl, Replace) {
  WordEncoding enc(MakeWord("aaaa"), 2);
  UpdateResult r = enc.Replace(2, 1);
  EXPECT_FALSE(r.changed_bottom_up.empty());
  EXPECT_EQ(enc.Current(), MakeWord("aaba"));
  EXPECT_EQ(enc.term().Validate(), "");
}

TEST(WordAvl, InsertEverywhere) {
  for (size_t pos = 0; pos <= 3; ++pos) {
    WordEncoding enc(MakeWord("aaa"), 2);
    enc.Insert(pos, 1);
    Word expected = MakeWord("aaa");
    expected.insert(expected.begin() + pos, 1);
    EXPECT_EQ(enc.Current(), expected) << "pos " << pos;
    EXPECT_TRUE(enc.CheckBalanced());
    EXPECT_EQ(enc.term().Validate(), "");
  }
}

TEST(WordAvl, EraseEverywhere) {
  for (size_t pos = 0; pos < 4; ++pos) {
    WordEncoding enc(MakeWord("abcd"), 4);
    enc.Erase(pos);
    Word expected = MakeWord("abcd");
    expected.erase(expected.begin() + pos);
    EXPECT_EQ(enc.Current(), expected) << "pos " << pos;
    EXPECT_TRUE(enc.CheckBalanced());
  }
}

TEST(WordAvl, EraseLastLetterThrows) {
  WordEncoding enc(MakeWord("a"), 2);
  EXPECT_THROW(enc.Erase(0), std::invalid_argument);
}

TEST(WordAvl, SequentialAppendStaysBalanced) {
  WordEncoding enc(MakeWord("a"), 2);
  for (int i = 0; i < 4000; ++i) enc.Insert(enc.size(), i % 2);
  EXPECT_TRUE(enc.CheckBalanced());
  EXPECT_EQ(enc.size(), 4001u);
  // AVL height bound: 1.44 log2(n) + 2.
  uint32_t h = enc.term().node(enc.term().root()).height;
  EXPECT_LE(h, 1.45 * std::log2(4001.0) + 2);
}

TEST(WordAvl, SequentialPrependStaysBalanced) {
  WordEncoding enc(MakeWord("a"), 2);
  for (int i = 0; i < 4000; ++i) enc.Insert(0, i % 2);
  EXPECT_TRUE(enc.CheckBalanced());
  EXPECT_EQ(enc.term().Validate(), "");
}

TEST(WordAvl, RandomEditScriptMatchesVector) {
  Rng rng(51);
  for (int trial = 0; trial < 10; ++trial) {
    Word ref = MakeWord("ab");
    WordEncoding enc(ref, 3);
    for (int step = 0; step < 300; ++step) {
      switch (rng.Index(3)) {
        case 0: {
          size_t pos = rng.Index(ref.size() + 1);
          Label l = static_cast<Label>(rng.Index(3));
          ref.insert(ref.begin() + pos, l);
          enc.Insert(pos, l);
          break;
        }
        case 1: {
          if (ref.size() > 1) {
            size_t pos = rng.Index(ref.size());
            ref.erase(ref.begin() + pos);
            enc.Erase(pos);
          }
          break;
        }
        case 2: {
          size_t pos = rng.Index(ref.size());
          Label l = static_cast<Label>(rng.Index(3));
          ref[pos] = l;
          enc.Replace(pos, l);
          break;
        }
      }
      ASSERT_TRUE(enc.CheckBalanced());
    }
    EXPECT_EQ(enc.Current(), ref);
    EXPECT_EQ(enc.term().Validate(), "");
  }
}

TEST(WordAvl, StableIdsSurviveEdits) {
  WordEncoding enc(MakeWord("abc"), 3);
  NodeId id_b = enc.PositionId(1);
  enc.Insert(0, 2);  // "cabc"
  enc.Insert(4, 2);  // "cabcc"
  EXPECT_EQ(enc.PositionOf(id_b), 2u);
  enc.Erase(0);  // "abcc"
  EXPECT_EQ(enc.PositionOf(id_b), 1u);
}

}  // namespace
}  // namespace treenum
