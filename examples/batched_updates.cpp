// Batched updates through the shared Engine interface: the same edit
// script drives the paper's dynamic engine, the no-index variant, and the
// two Table-1 baselines, first edit-by-edit and then as one transaction
// (BeginBatch / edits / CommitBatch via ApplyEdits). The batch coalesces
// the changed term-node sets, so boxes shared between edit paths — in
// particular the O(log n) root path — are refreshed once per batch.
#include <cstdio>
#include <memory>
#include <vector>

#include "automata/query_library.h"
#include "baseline/naive_engine.h"
#include "baseline/static_engine.h"
#include "core/engine.h"
#include "core/tree_enumerator.h"
#include "util/random.h"

using namespace treenum;

int main() {
  Rng rng(7);
  UnrankedTva query = QueryMarkedAncestor(3, 1, 2);
  UnrankedTree tree = RandomTree(5000, 3, rng);

  // A batch of clustered edits, generated against a mirror so the same
  // script is valid for every engine.
  UnrankedTree mirror = tree;
  std::vector<Edit> batch;
  std::vector<NodeId> nodes = mirror.PreorderNodes();
  for (int i = 0; i < 32; ++i) {
    NodeId n = nodes[rng.Index(nodes.size())];
    Label l = static_cast<Label>(rng.Index(3));
    if (rng.Index(2) == 0) {
      mirror.Relabel(n, l);
      batch.push_back(Edit::Relabel(n, l));
    } else {
      mirror.InsertFirstChild(n, l);
      batch.push_back(Edit::InsertFirstChild(n, l));
    }
  }

  struct Named {
    const char* name;
    std::unique_ptr<Engine> engine;
  };
  std::vector<Named> engines;
  engines.push_back({"indexed (this paper)",
                     std::make_unique<TreeEnumerator>(tree, query)});
  engines.push_back(
      {"no-index baseline",
       std::make_unique<TreeEnumerator>(tree, query, BoxEnumMode::kNaive)});
  engines.push_back({"static rebuild", std::make_unique<StaticEngine>(tree, query)});
  engines.push_back({"naive oracle", std::make_unique<NaiveEngine>(tree, query)});

  for (Named& named : engines) {
    UpdateStats stats = named.engine->ApplyEdits(batch);
    std::printf("%-20s edits=%zu boxes_recomputed=%zu answers=%zu\n",
                named.name, stats.edits_applied, stats.boxes_recomputed,
                named.engine->EnumerateAll().size());
  }

  // For comparison: the same edits one-by-one on a fresh indexed engine.
  TreeEnumerator sequential(tree, query);
  size_t boxes = 0;
  for (const Edit& e : batch) boxes += sequential.ApplyEdit(e).boxes_recomputed;
  std::printf("%-20s edits=%zu boxes_recomputed=%zu answers=%zu\n",
              "indexed, per-edit", batch.size(), boxes,
              sequential.EnumerateAll().size());
  return 0;
}
