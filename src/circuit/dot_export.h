// Graphviz (DOT) export of terms and assignment circuits, for debugging and
// documentation. Boxes are rendered as clusters following the v-tree, with
// γ-gates, ×-gates and var-gates inside.
#ifndef TREENUM_CIRCUIT_DOT_EXPORT_H_
#define TREENUM_CIRCUIT_DOT_EXPORT_H_

#include <string>

#include "circuit/circuit.h"
#include "falgebra/term.h"

namespace treenum {

/// The term as a binary tree with operator/leaf labels.
std::string TermToDot(const Term& term);

/// The circuit: one cluster per box, ∪/×/var/⊤ gates as nodes, wires as
/// edges (⊥ gates omitted). Intended for small instances.
std::string CircuitToDot(const AssignmentCircuit& circuit);

}  // namespace treenum

#endif  // TREENUM_CIRCUIT_DOT_EXPORT_H_
