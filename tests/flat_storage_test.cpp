// Property tests for the arena/CSR circuit storage: long mixed edit
// scripts cross-checked against the recompute-from-scratch oracle, arena
// invariant validation along the way, the steady-state allocation-freedom
// guarantee (via the alloc gauge hooks linked into this binary), and the
// TREENUM_CHECK width limit.
#include <gtest/gtest.h>

#include <vector>

#include "automata/query_library.h"
#include "baseline/static_engine.h"
#include "core/engine.h"
#include "core/tree_enumerator.h"
#include "enumeration/box_enum.h"
#include "test_util.h"
#include "util/alloc_gauge.h"

namespace treenum {
namespace {

// Edit scripts come from test_util's ScriptedEditor (mirror-tree scripter).

TEST(FlatStorage, LongMixedScriptMatchesRecomputeOracle) {
  Rng rng(131);
  UnrankedTva queries[] = {QuerySelectLabel(3, 1), QueryMarkedAncestor(3, 1, 2),
                           QueryDescendantPairs(3, 0, 1)};
  for (const UnrankedTva& q : queries) {
    UnrankedTree tree = RandomTree(30 + rng.Index(30), 3, rng);
    TreeEnumerator indexed(tree, q, BoxEnumMode::kIndexed);
    TreeEnumerator naive(tree, q, BoxEnumMode::kNaive);
    StaticEngine oracle(tree, q);
    ScriptedEditor script(tree, 997 + rng.Index(1000), 3);

    for (int step = 0; step < 220; ++step) {
      Edit e = script.NextEdit();
      indexed.ApplyEdit(e);
      naive.ApplyEdit(e);
      oracle.ApplyEdit(e);
      ASSERT_EQ(indexed.circuit().ValidateStorage(), "") << "step " << step;
      ASSERT_EQ(indexed.index().ValidateStorage(), "") << "step " << step;
      if (step % 10 == 9) {
        std::vector<Assignment> expected = oracle.EnumerateAll();
        ASSERT_EQ(indexed.EnumerateAll(), expected) << "step " << step;
        ASSERT_EQ(naive.EnumerateAll(), expected) << "step " << step;
      }
    }
  }
}

TEST(FlatStorage, BatchedScriptMatchesRecomputeOracle) {
  Rng rng(137);
  UnrankedTva q = QueryMarkedAncestor(3, 1, 2);
  UnrankedTree tree = RandomTree(60, 3, rng);
  TreeEnumerator indexed(tree, q, BoxEnumMode::kIndexed);
  StaticEngine oracle(tree, q);
  ScriptedEditor script(tree, 4242, 3);

  for (int round = 0; round < 12; ++round) {
    std::vector<Edit> edits;
    for (int i = 0; i < 24; ++i) edits.push_back(script.NextEdit());
    indexed.ApplyEdits(edits);
    oracle.ApplyEdits(edits);
    ASSERT_EQ(indexed.circuit().ValidateStorage(), "") << "round " << round;
    ASSERT_EQ(indexed.index().ValidateStorage(), "") << "round " << round;
    ASSERT_EQ(indexed.EnumerateAll(), oracle.EnumerateAll())
        << "round " << round;
  }
}

// The tentpole guarantee: once every (node, label) configuration has been
// seen, a relabel edit refreshes its whole root path — circuit boxes, the
// jump index, and run counts — without a single heap allocation. Runs the
// exact same edit sequence twice: pass one warms the arena spans and
// scratch capacities, pass two must be allocation-free. Covers both modes:
// kNaive maintains circuit + counts, kIndexed additionally the pooled
// jump index.
void CheckRelabelSteadyState(BoxEnumMode mode, bool batched) {
  ASSERT_TRUE(AllocGaugeActive())
      << "flat_storage_test must link treenum_alloc_gauge";

  Rng rng(139);
  UnrankedTree tree = RandomTree(200, 3, rng);
  TreeEnumerator e(tree, QueryMarkedAncestor(3, 1, 2), mode);
  e.EnableCounting();

  std::vector<NodeId> targets = tree.PreorderNodes();
  auto run_pass = [&]() {
    if (batched) {
      // One batch per target keeps batches root-path-shaped, like the
      // batched relabel bench.
      for (NodeId n : targets) {
        e.BeginBatch();
        for (Label l = 0; l < 3; ++l) e.Relabel(n, l);
        e.CommitBatch();
      }
    } else {
      for (NodeId n : targets) {
        for (Label l = 0; l < 3; ++l) e.Relabel(n, l);
      }
    }
  };
  // Two warm passes: the first still sees box configurations involving the
  // tree's original labels; after it every label is the cycle's last, so
  // the second pass visits exactly the configurations the measured pass
  // replays, sizing every span and scratch buffer.
  run_pass();
  run_pass();

  AllocGaugeScope gauge;
  run_pass();
  EXPECT_EQ(gauge.allocs(), 0u)
      << "steady-state relabel edits must not touch the heap";

  ASSERT_EQ(e.circuit().ValidateStorage(), "");
  if (mode == BoxEnumMode::kIndexed) {
    ASSERT_EQ(e.index().ValidateStorage(), "");
  }
  // The circuit still answers correctly after all passes.
  StaticEngine oracle(e.tree(), QueryMarkedAncestor(3, 1, 2));
  EXPECT_EQ(e.EnumerateAll(), oracle.EnumerateAll());
}

TEST(FlatStorage, RelabelSteadyStateIsAllocationFree) {
  CheckRelabelSteadyState(BoxEnumMode::kNaive, /*batched=*/false);
}

TEST(FlatStorage, IndexedRelabelSteadyStateIsAllocationFree) {
  CheckRelabelSteadyState(BoxEnumMode::kIndexed, /*batched=*/false);
}

TEST(FlatStorage, IndexedBatchedRelabelSteadyStateIsAllocationFree) {
  CheckRelabelSteadyState(BoxEnumMode::kIndexed, /*batched=*/true);
}

// Enumeration-delay counterpart: after one warm traversal, re-running a
// box-enum cursor over the same circuit (Reset keeps the warm frame slots
// and scratch) performs zero heap allocations per produced relation —
// the cursors compose into recycled buffers instead of fresh matrices.
TEST(FlatStorage, BoxEnumDelayIsAllocationFreeAfterWarmup) {
  ASSERT_TRUE(AllocGaugeActive());

  Rng rng(149);
  UnrankedTree tree = RandomTree(300, 3, rng);
  TreeEnumerator e(tree, QueryMarkedAncestor(3, 1, 2), BoxEnumMode::kIndexed);
  TermNodeId root = e.term().root();
  size_t nu = e.circuit().box(root).num_unions();
  ASSERT_GT(nu, 0u);
  std::vector<uint32_t> gamma;
  for (uint32_t u = 0; u < nu; ++u) gamma.push_back(u);

  IndexedBoxEnum indexed(&e.index(), root, gamma);
  NaiveBoxEnum naive(&e.circuit(), root, gamma);
  for (BoxEnumCursor* cursor :
       {static_cast<BoxEnumCursor*>(&indexed),
        static_cast<BoxEnumCursor*>(&naive)}) {
    BoxRelation out;
    std::vector<TermNodeId> warm_boxes;
    while (cursor->Next(&out)) warm_boxes.push_back(out.box);
    ASSERT_FALSE(warm_boxes.empty());

    // The relation buffers circulate between the stack slots and the output,
    // so a buffer may land in a spot that needs more capacity than it saw
    // last pass; each such event grows one buffer monotonically, so the
    // capacities reach a fixed point after a few passes.
    int pass = 0;
    for (; pass < 10; ++pass) {
      cursor->Reset(root, gamma);
      AllocGaugeScope warm;
      while (cursor->Next(&out)) {
      }
      if (warm.allocs() == 0) break;
    }
    ASSERT_LT(pass, 10) << "cursor buffers failed to reach a steady state";

    cursor->Reset(root, gamma);
    std::vector<TermNodeId> measured_boxes;
    measured_boxes.reserve(warm_boxes.size());  // keep the gauge on the cursor
    AllocGaugeScope gauge;
    while (cursor->Next(&out)) measured_boxes.push_back(out.box);
    EXPECT_EQ(gauge.allocs(), 0u)
        << "warm box-enum traversal must not touch the heap";
    EXPECT_EQ(measured_boxes, warm_boxes);
  }
}

TEST(FlatStorage, WidthLimitIsChecked) {
  // The old int16_t layout overflowed silently for > 32767 dense gates;
  // the arena layout re-checks the documented bound loudly.
  BinaryTva wide(kMaxCircuitWidth + 1, 1, 1);
  std::vector<uint8_t> kind(kMaxCircuitWidth + 1, 0);
  Term term(TermAlphabet{1});
  EXPECT_DEATH(AssignmentCircuit(&term, &wide, &kind),
               "TREENUM_CHECK failed");
}

}  // namespace
}  // namespace treenum
