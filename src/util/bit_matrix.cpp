#include "util/bit_matrix.h"

#include <cassert>

namespace treenum {

BitMatrix BitMatrix::Identity(size_t n) {
  BitMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) m.Set(i, i);
  return m;
}

bool BitMatrix::RowAny(size_t r) const {
  const uint64_t* row = Row(r);
  for (size_t w = 0; w < words_per_row_; ++w) {
    if (row[w]) return true;
  }
  return false;
}

bool BitMatrix::ColAny(size_t c) const {
  for (size_t r = 0; r < rows_; ++r) {
    if (Get(r, c)) return true;
  }
  return false;
}

bool BitMatrix::Any() const {
  for (uint64_t w : bits_) {
    if (w) return true;
  }
  return false;
}

size_t BitMatrix::Count() const {
  size_t n = 0;
  for (uint64_t w : bits_) n += static_cast<size_t>(__builtin_popcountll(w));
  return n;
}

BitMatrix BitMatrix::Compose(const BitMatrix& other) const {
  assert(cols_ == other.rows_);
  BitMatrix result(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const uint64_t* row = Row(r);
    uint64_t* out = result.MutableRow(r);
    for (size_t w = 0; w < words_per_row_; ++w) {
      uint64_t bits = row[w];
      while (bits) {
        size_t b = w * 64 + static_cast<size_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
        const uint64_t* mid = other.Row(b);
        for (size_t ow = 0; ow < other.words_per_row_; ++ow) out[ow] |= mid[ow];
      }
    }
  }
  return result;
}

void BitMatrix::UnionWith(const BitMatrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < bits_.size(); ++i) bits_[i] |= other.bits_[i];
}

void BitMatrix::ZeroRowsNotIn(const std::vector<uint64_t>& keep) {
  for (size_t r = 0; r < rows_; ++r) {
    bool kept = r / 64 < keep.size() && ((keep[r / 64] >> (r % 64)) & 1u);
    if (!kept) {
      uint64_t* row = MutableRow(r);
      for (size_t w = 0; w < words_per_row_; ++w) row[w] = 0;
    }
  }
}

std::vector<uint32_t> BitMatrix::NonEmptyRows() const {
  std::vector<uint32_t> out;
  for (size_t r = 0; r < rows_; ++r) {
    if (RowAny(r)) out.push_back(static_cast<uint32_t>(r));
  }
  return out;
}

std::vector<uint32_t> BitMatrix::NonEmptyCols() const {
  std::vector<uint32_t> out;
  std::vector<uint64_t> acc(words_per_row_, 0);
  for (size_t r = 0; r < rows_; ++r) {
    const uint64_t* row = Row(r);
    for (size_t w = 0; w < words_per_row_; ++w) acc[w] |= row[w];
  }
  for (size_t c = 0; c < cols_; ++c) {
    if ((acc[c / 64] >> (c % 64)) & 1u) out.push_back(static_cast<uint32_t>(c));
  }
  return out;
}

std::string BitMatrix::ToString() const {
  std::string s;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) s += Get(r, c) ? '1' : '0';
    s += '\n';
  }
  return s;
}

BitMatrix ComposeNaive(const BitMatrix& a, const BitMatrix& b) {
  assert(a.cols() == b.rows());
  BitMatrix result(a.rows(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t m = 0; m < a.cols(); ++m) {
      if (!a.Get(r, m)) continue;
      for (size_t c = 0; c < b.cols(); ++c) {
        if (b.Get(m, c)) result.Set(r, c);
      }
    }
  }
  return result;
}

}  // namespace treenum
