// Shared workload generators and helpers for the benchmark suite. Each
// bench binary regenerates one experiment of EXPERIMENTS.md.
#ifndef TREENUM_BENCH_BENCH_UTIL_H_
#define TREENUM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <utility>
#include <vector>

#include "automata/query_library.h"
#include "core/engine.h"
#include "core/tree_enumerator.h"
#include "trees/unranked_tree.h"
#include "util/alloc_gauge.h"
#include "util/random.h"

namespace treenum {
namespace bench {

/// Allocation-count gauge (util/alloc_gauge.h) for proving hot paths are
/// allocation-free: wrap a timed region in an AllocGauge and report
/// `per(items)` as a counter (e.g. allocs_per_edit). Counts are nonzero
/// only in binaries linked against treenum_alloc_gauge (bench_updates is);
/// elsewhere the gauge reads 0 and `active()` says so.
class AllocGauge {
 public:
  bool active() const { return AllocGaugeActive(); }
  uint64_t allocs() const { return scope_.allocs(); }
  double per(size_t items) const {
    return items == 0 ? 0.0
                      : static_cast<double>(scope_.allocs()) /
                            static_cast<double>(items);
  }

 private:
  AllocGaugeScope scope_;
};

inline constexpr uint64_t kSeed = 0xBADC0FFEE;

/// Random tree workload with 3 labels (a/b/c) used across experiments.
inline UnrankedTree MakeTree(size_t n) {
  Rng rng(kSeed + n);
  return RandomTree(n, 3, rng);
}

/// Path-shaped adversarial workload.
inline UnrankedTree MakePath(size_t n) {
  Rng rng(kSeed + n);
  return PathTree(n, 3, rng);
}

/// The standard benchmark query: marked-ancestor (4 states, nontrivial
/// vertical information flow, answers sparse).
inline UnrankedTva StandardQuery() { return QueryMarkedAncestor(3, 1, 2); }

/// Random-edit driver with an incrementally maintained pool of candidate
/// node ids, so picking an edit target is O(1) — a full PreorderNodes()
/// scan per edit would add an O(n) term inside the timed region and mask
/// the logarithmic update shapes the experiments measure.
class EditDriver {
 public:
  EditDriver(TreeEnumerator& e, uint64_t seed) : e_(e), rng_(seed) {
    pool_ = e.tree().PreorderNodes();
  }

  UpdateStats Step() {
    NodeId n = Pick();
    switch (rng_.Index(4)) {
      case 0:
        return e_.Relabel(n, static_cast<Label>(rng_.Index(3)));
      case 1: {
        NodeId u;
        UpdateStats s =
            e_.InsertFirstChild(n, static_cast<Label>(rng_.Index(3)), &u);
        pool_.push_back(u);
        return s;
      }
      case 2: {
        if (n == e_.tree().root()) {
          return e_.Relabel(n, static_cast<Label>(rng_.Index(3)));
        }
        NodeId u;
        UpdateStats s =
            e_.InsertRightSibling(n, static_cast<Label>(rng_.Index(3)), &u);
        pool_.push_back(u);
        return s;
      }
      default:
        if (n != e_.tree().root() && e_.tree().IsLeaf(n)) {
          return e_.DeleteLeaf(n);
        }
        return e_.Relabel(n, static_cast<Label>(rng_.Index(3)));
    }
  }

  UpdateStats RelabelStep() {
    return e_.Relabel(Pick(), static_cast<Label>(rng_.Index(3)));
  }

 private:
  NodeId Pick() {
    while (true) {
      size_t i = rng_.Index(pool_.size());
      NodeId n = pool_[i];
      if (e_.tree().IsAlive(n)) return n;
      pool_[i] = pool_.back();  // drop stale (deleted) entries lazily
      pool_.pop_back();
    }
  }

  TreeEnumerator& e_;
  Rng rng_;
  std::vector<NodeId> pool_;
};

/// Random-edit driver for any Engine backend: the candidate pool is kept in
/// sync with a mirror tree (same edits => same NodeIds on every backend),
/// so one driver instance can feed engines that expose no tree() accessor.
/// Emits through Engine::ApplyEdit, i.e. the shared update surface.
class EngineEditDriver {
 public:
  EngineEditDriver(Engine& e, UnrankedTree mirror, uint64_t seed)
      : e_(e), mirror_(std::move(mirror)), rng_(seed) {
    pool_ = mirror_.PreorderNodes();
  }

  UpdateStats Step() {
    NodeId n = Pick();
    Label l = static_cast<Label>(rng_.Index(3));
    switch (rng_.Index(4)) {
      case 1: {
        mirror_.InsertFirstChild(n, l);
        NodeId u;
        UpdateStats s = e_.ApplyEdit(Edit::InsertFirstChild(n, l), &u);
        pool_.push_back(u);
        return s;
      }
      case 2: {
        if (n == mirror_.root()) break;
        mirror_.InsertRightSibling(n, l);
        NodeId u;
        UpdateStats s = e_.ApplyEdit(Edit::InsertRightSibling(n, l), &u);
        pool_.push_back(u);
        return s;
      }
      case 3: {
        if (n == mirror_.root() || !mirror_.IsLeaf(n)) break;
        mirror_.DeleteLeaf(n);
        return e_.ApplyEdit(Edit::DeleteLeaf(n));
      }
      default:
        break;
    }
    mirror_.Relabel(n, l);
    return e_.ApplyEdit(Edit::Relabel(n, l));
  }

  /// Relabel-only variant: the paper's cheapest update (pure path
  /// recomputation, never a rebalance) — the steady-state workload for the
  /// arena storage's allocation-free refresh path.
  UpdateStats RelabelStep() {
    NodeId n = Pick();
    Label l = static_cast<Label>(rng_.Index(3));
    mirror_.Relabel(n, l);
    return e_.ApplyEdit(Edit::Relabel(n, l));
  }

 private:
  NodeId Pick() {
    while (true) {
      size_t i = rng_.Index(pool_.size());
      NodeId n = pool_[i];
      if (mirror_.IsAlive(n)) return n;
      pool_[i] = pool_.back();  // drop stale (deleted) entries lazily
      pool_.pop_back();
    }
  }

  Engine& e_;
  UnrankedTree mirror_;
  Rng rng_;
  std::vector<NodeId> pool_;
};

/// Mirror-driven edit scripter emitting Edit values (instead of applying
/// them like EngineEditDriver), so one script can drive a DynamicDocument
/// and a fleet of independent engines identically.
class EditScript {
 public:
  EditScript(UnrankedTree mirror, uint64_t seed, size_t num_labels = 3)
      : mirror_(std::move(mirror)), rng_(seed), num_labels_(num_labels) {
    pool_ = mirror_.PreorderNodes();
  }

  Edit Next() {
    NodeId n = Pick();
    Label l = static_cast<Label>(rng_.Index(num_labels_));
    switch (rng_.Index(4)) {
      case 1: {
        pool_.push_back(mirror_.InsertFirstChild(n, l));
        return Edit::InsertFirstChild(n, l);
      }
      case 2:
        if (n != mirror_.root()) {
          pool_.push_back(mirror_.InsertRightSibling(n, l));
          return Edit::InsertRightSibling(n, l);
        }
        break;
      case 3:
        if (n != mirror_.root() && mirror_.IsLeaf(n)) {
          mirror_.DeleteLeaf(n);
          return Edit::DeleteLeaf(n);
        }
        break;
      default:
        break;
    }
    mirror_.Relabel(n, l);
    return Edit::Relabel(n, l);
  }

  Edit NextRelabel() {
    NodeId n = Pick();
    Label l = static_cast<Label>(rng_.Index(num_labels_));
    mirror_.Relabel(n, l);
    return Edit::Relabel(n, l);
  }

 private:
  NodeId Pick() {
    while (true) {
      size_t i = rng_.Index(pool_.size());
      NodeId n = pool_[i];
      if (mirror_.IsAlive(n)) return n;
      pool_[i] = pool_.back();  // drop stale (deleted) entries lazily
      pool_.pop_back();
    }
  }

  UnrankedTree mirror_;
  Rng rng_;
  size_t num_labels_;
  std::vector<NodeId> pool_;
};

/// Machine-readable benchmark output: appends one JSON object per call to
/// the file named by $TREENUM_BENCH_JSON (no-op when unset), so CI can
/// collect a BENCH_*.json trajectory across PRs without parsing console
/// output. google-benchmark invokes each benchmark several times while
/// calibrating iteration counts, so the file holds several lines per
/// (bench, args) key; the final measured run comes last — consumers keep
/// the last line per key (or the one with the largest "iterations" field,
/// which benches should include). The binaries additionally support
/// --benchmark_format=json for the full report.
inline void EmitJson(
    const char* bench,
    std::initializer_list<std::pair<const char*, double>> fields) {
  const char* path = std::getenv("TREENUM_BENCH_JSON");
  if (!path) return;
  std::FILE* f = std::fopen(path, "a");
  if (!f) return;
  std::fprintf(f, "{\"bench\":\"%s\"", bench);
  for (const auto& [key, value] : fields) {
    std::fprintf(f, ",\"%s\":%.6g", key, value);
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
}

/// Drains a cursor; returns the number of answers.
inline size_t Drain(const TreeEnumerator& e) {
  TreeEnumerator::Cursor c = e.Enumerate();
  Assignment a;
  size_t n = 0;
  while (c.Next(&a)) ++n;
  return n;
}

}  // namespace bench
}  // namespace treenum

#endif  // TREENUM_BENCH_BENCH_UTIL_H_
