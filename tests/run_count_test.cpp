#include "counting/run_count.h"

#include <gtest/gtest.h>

#include "automata/homogenize.h"
#include "automata/query_library.h"
#include "automata/translate.h"
#include "falgebra/builder.h"
#include "core/tree_enumerator.h"
#include "falgebra/update.h"
#include "test_util.h"

namespace treenum {
namespace {

// Independent oracle: counts (valuation, run) pairs on a term by trying all
// leaf valuations and, for each, all state assignments to term nodes.
uint64_t BruteForceRuns(const BinaryTva& a, const Term& term) {
  std::vector<TermNodeId> nodes;
  std::vector<std::pair<TermNodeId, NodeId>> leaves;
  auto walk = [&](auto&& self, TermNodeId id) -> void {
    nodes.push_back(id);
    const TermNode& t = term.node(id);
    if (t.left == kNoTerm) {
      leaves.emplace_back(id, t.tree_node);
      return;
    }
    self(self, t.left);
    self(self, t.right);
  };
  walk(walk, term.root());

  size_t vars = a.num_vars();
  size_t w = a.num_states();
  uint64_t total = 0;
  size_t val_bits = leaves.size() * vars;
  for (uint64_t code = 0; code < (uint64_t{1} << val_bits); ++code) {
    // Decode valuation.
    std::vector<VarMask> mask_of_leaf(term.id_bound(), 0);
    uint64_t c = code;
    for (auto& [tid, nid] : leaves) {
      mask_of_leaf[tid] =
          static_cast<VarMask>(c & ((VarMask{1} << vars) - 1));
      c >>= vars;
    }
    // Enumerate all state assignments ρ: nodes -> Q; check run conditions.
    size_t n = nodes.size();
    std::vector<State> rho(n, 0);
    while (true) {
      bool ok = true;
      for (size_t i = 0; i < n && ok; ++i) {
        const TermNode& t = term.node(nodes[i]);
        if (t.left == kNoTerm) {
          bool found = false;
          for (const auto& [vs, q] : a.LeafInitsFor(t.label)) {
            if (vs == mask_of_leaf[nodes[i]] && q == rho[i]) found = true;
          }
          ok = found;
        } else {
          // Locate children indices (linear scan; tiny instances only).
          State ql = 0, qr = 0;
          for (size_t j = 0; j < n; ++j) {
            if (nodes[j] == t.left) ql = rho[j];
            if (nodes[j] == t.right) qr = rho[j];
          }
          bool found = false;
          for (State q : a.TransitionsFor(t.label, ql, qr)) {
            if (q == rho[i]) found = true;
          }
          ok = found;
        }
      }
      if (ok && a.IsFinal(rho[0])) ++total;  // nodes[0] is the root
      // Next assignment.
      size_t i = 0;
      while (i < n && ++rho[i] == w) {
        rho[i] = 0;
        ++i;
      }
      if (i == n) break;
    }
  }
  return total;
}

TEST(RunCount, MatchesBruteForceOnTinyTerms) {
  Rng rng(501);
  for (int trial = 0; trial < 25; ++trial) {
    BinaryTva raw = RandomBinaryTvaOnHH(rng, 3, 2, 1, 3, 7);
    Term term(TermAlphabet{2});
    term.set_root(BuildRandomHHTerm(term, rng, 1 + rng.Index(4), 2));
    // Counter runs on the raw automaton (no homogenization needed).
    std::vector<uint8_t> kind(raw.num_states(), 0);
    AssignmentCircuit circuit(&term, &raw, &kind);
    RunCounter counter(&circuit);
    counter.BuildAll();
    EXPECT_EQ(counter.TotalAcceptingRuns(), BruteForceRuns(raw, term))
        << "trial " << trial;
  }
}

TEST(RunCount, UnambiguousQueryCountsAnswers) {
  // The library queries are unambiguous (at most one run per valuation), so
  // the run count at the root equals the number of satisfying assignments.
  Rng rng(503);
  UnrankedTva q = QuerySelectLabel(2, 1);
  HomogenizedTva h = HomogenizeBinaryTva(TranslateUnrankedTva(q).tva);
  for (int trial = 0; trial < 10; ++trial) {
    UnrankedTree t = RandomTree(1 + rng.Index(60), 2, rng);
    size_t expected = 0;
    for (NodeId n : t.PreorderNodes()) expected += t.label(n) == 1;
    Encoding enc = EncodeTree(std::move(t), 2);
    AssignmentCircuit circuit(&enc.term, &h.tva, &h.kind);
    circuit.BuildAll();
    RunCounter counter(&circuit);
    counter.BuildAll();
    // The empty valuation reaches the final 0-state; subtract that run if
    // present (it does not correspond to an answer of this query).
    uint64_t runs = counter.TotalAcceptingRuns();
    EXPECT_EQ(runs, expected) << "trial " << trial;
  }
}

TEST(RunCount, IncrementalMaintenanceMatchesFresh) {
  Rng rng(509);
  UnrankedTva q = QueryMarkedAncestor(3, 1, 2);
  HomogenizedTva h = HomogenizeBinaryTva(TranslateUnrankedTva(q).tva);
  DynamicEncoding dyn(RandomTree(30, 3, rng), 3);
  AssignmentCircuit circuit(&dyn.term(), &h.tva, &h.kind);
  circuit.BuildAll();
  RunCounter counter(&circuit);
  counter.BuildAll();

  for (int step = 0; step < 40; ++step) {
    std::vector<NodeId> nodes = dyn.tree().PreorderNodes();
    NodeId n = nodes[rng.Index(nodes.size())];
    UpdateResult r;
    switch (rng.Index(3)) {
      case 0:
        r = dyn.Relabel(n, static_cast<Label>(rng.Index(3)));
        break;
      case 1:
        r = dyn.InsertFirstChild(n, static_cast<Label>(rng.Index(3)));
        break;
      default:
        if (n != dyn.tree().root() && dyn.tree().IsLeaf(n)) {
          r = dyn.DeleteLeaf(n);
        } else {
          r = dyn.Relabel(n, static_cast<Label>(rng.Index(3)));
        }
        break;
    }
    for (TermNodeId id : r.freed) {
      circuit.FreeBox(id);
      counter.FreeBoxCounts(id);
    }
    for (TermNodeId id : r.changed_bottom_up) {
      circuit.RebuildBox(id);
      counter.RebuildBoxCounts(id);
    }
    AssignmentCircuit fresh_circuit(&dyn.term(), &h.tva, &h.kind);
    fresh_circuit.BuildAll();
    RunCounter fresh(&fresh_circuit);
    fresh.BuildAll();
    ASSERT_EQ(counter.TotalAcceptingRuns(), fresh.TotalAcceptingRuns())
        << "step " << step;
  }
}

TEST(RunCount, CountsGrowWithAnswers) {
  // Run counts for the unambiguous marked-ancestor query equal the answer
  // count; verify against the enumerator on a concrete tree.
  UnrankedTree t = UnrankedTree::Parse("(b (c) (a (c) (c)) (b (c)))");
  UnrankedTva q = QueryMarkedAncestor(3, 1, 2);
  HomogenizedTva h = HomogenizeBinaryTva(TranslateUnrankedTva(q).tva);
  Encoding enc = EncodeTree(t, 3);
  AssignmentCircuit circuit(&enc.term, &h.tva, &h.kind);
  circuit.BuildAll();
  RunCounter counter(&circuit);
  counter.BuildAll();
  TreeEnumerator e(t, q);
  EXPECT_EQ(counter.TotalAcceptingRuns(), e.EnumerateAll().size());
}

}  // namespace
}  // namespace treenum
