// Bottom-up subset-construction determinization of binary TVAs.
//
// This is the baseline for the paper's second contribution (tractable
// combined complexity): all pre-existing enumeration algorithms for trees
// required a *deterministic* automaton, and determinizing costs up to
// 2^|Q| states — the benchmark bench_combined measures exactly this blowup
// against the paper's polynomial pipeline.
#ifndef TREENUM_AUTOMATA_DETERMINIZE_H_
#define TREENUM_AUTOMATA_DETERMINIZE_H_

#include <optional>

#include "automata/binary_tva.h"

namespace treenum {

/// Result of determinization.
struct DeterminizedTva {
  BinaryTva tva;
  /// Number of subset states materialized.
  size_t num_subsets;
};

/// Determinizes `a` by the reachable subset construction. Returns nullopt
/// if more than `max_states` subset states would be created (the expected
/// outcome for adversarial nondeterminism — callers report the blowup).
std::optional<DeterminizedTva> DeterminizeBinaryTva(const BinaryTva& a,
                                                    size_t max_states);

/// True iff `a` is bottom-up deterministic: at most one state per (leaf
/// label, annotation) and per (label, q1, q2).
bool IsDeterministic(const BinaryTva& a);

}  // namespace treenum

#endif  // TREENUM_AUTOMATA_DETERMINIZE_H_
