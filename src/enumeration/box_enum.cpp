#include "enumeration/box_enum.h"

#include <cassert>

namespace treenum {

void InitialRelationInto(size_t num_unions, const std::vector<uint32_t>& gamma,
                         BitMatrix* out) {
  out->Assign(num_unions, gamma.size());
  for (size_t i = 0; i < gamma.size(); ++i) out->Set(gamma[i], i);
}

BitMatrix InitialRelation(size_t num_unions,
                          const std::vector<uint32_t>& gamma) {
  BitMatrix r;
  InitialRelationInto(num_unions, gamma, &r);
  return r;
}

void WireRelationInto(const AssignmentCircuit& circuit, TermNodeId box,
                      int side, BitMatrix* out) {
  const Term& term = circuit.term();
  const Box b = circuit.box(box);
  TermNodeId child =
      side == 0 ? term.node(box).left : term.node(box).right;
  const Box cb = circuit.box(child);
  out->Assign(cb.num_unions(), b.num_unions());
  for (size_t u = 0; u < b.num_unions(); ++u) {
    for (const auto& [s, state] : b.child_union_inputs(u)) {
      if (s != side) continue;
      int32_t d = cb.union_idx(state);
      assert(d != kNoGate);
      out->Set(static_cast<size_t>(d), u);
    }
  }
}

BitMatrix WireRelation(const AssignmentCircuit& circuit, TermNodeId box,
                       int side) {
  BitMatrix r;
  WireRelationInto(circuit, box, side, &r);
  return r;
}

// ---------------------------------------------------------------- Indexed

IndexedBoxEnum::IndexedBoxEnum(const EnumIndex* index, TermNodeId box,
                               const std::vector<uint32_t>& gamma)
    : index_(index) {
  Reset(box, gamma);
}

void IndexedBoxEnum::Reset(TermNodeId box,
                           const std::vector<uint32_t>& gamma) {
  assert(!gamma.empty());
  top_ = 0;
  steps_ = 0;
  Frame& f = PushSlot();
  f.kind = Frame::kEnter;
  f.box = box;
  InitialRelationInto(index_->circuit().box(box).num_unions(), gamma, &f.rel);
}

IndexedBoxEnum::Frame& IndexedBoxEnum::PushSlot() {
  if (top_ == stack_.size()) stack_.emplace_back();
  return stack_[top_++];
}

// True iff the jump loop has another iteration at (box, rel): the first
// bidirectional box (lca of the gates' spans) is a strict ancestor of the
// first interesting box. `gates` are rel's non-empty rows. Outputs the span
// candidate index.
static bool WalkViable(const BoxIndex& bi, const std::vector<uint32_t>& gates,
                       int32_t* span_cand) {
  if (gates.empty()) return false;
  int32_t c1 = bi.FibLocal(gates);
  int32_t j = bi.SpanLocal(gates);
  if (j == c1) return false;
  if (bi.Lca(j, c1) != j) return false;  // j not a strict ancestor of c1
  *span_cand = j;
  return true;
}

bool IndexedBoxEnum::Next(BoxRelation* out) {
  const Term& term = index_->circuit().term();
  while (top_ > 0) {
    // Claim the top frame: its relation swaps into frel_ and the slot keeps
    // frel_'s previous (warm) buffer for reuse by a later push.
    Frame& claimed = stack_[top_ - 1];
    const Frame::Kind kind = claimed.kind;
    const TermNodeId fbox = claimed.box;
    frel_.swap(claimed.rel);
    --top_;
    ++steps_;

    if (kind == Frame::kEnter) {
      frel_.NonEmptyRowsInto(&gates_);
      assert(!gates_.empty());
      const BoxIndex bi = index_->at(fbox);
      int32_t c1 = bi.FibLocal(gates_);
      TermNodeId b1 = bi.cand_box(c1);
      // R(B1, Γ), composed straight into the caller's reused output.
      bi.cand_rel(c1).ComposeInto(frel_, &out->rel);

      // The loop continuation for this frame (Line 11-17), pushed only when
      // it will do work — this is the tail-call elimination of Lemma 6.4.
      int32_t span_cand;
      if (WalkViable(bi, gates_, &span_cand)) {
        Frame& w = PushSlot();
        w.kind = Frame::kWalk;
        w.box = fbox;
        w.rel.swap(frel_);
      }
      // Recurse below B1 (Lines 7-10); right pushed first so left pops
      // first.
      if (!term.IsLeaf(b1)) {
        const BoxIndex b1i = index_->at(b1);
        {
          Frame& r = PushSlot();
          r.kind = Frame::kEnter;
          r.box = term.node(b1).right;
          b1i.wire_right().ComposeInto(out->rel, &r.rel);
          if (!r.rel.Any()) --top_;  // vacate; the slot keeps its buffer
        }
        {
          Frame& l = PushSlot();
          l.kind = Frame::kEnter;
          l.box = term.node(b1).left;
          b1i.wire_left().ComposeInto(out->rel, &l.rel);
          if (!l.rel.Any()) --top_;
        }
      }
      out->box = b1;
      return true;
    }

    // kWalk: one iteration of the jump loop. Frames are only pushed when
    // viable, so this always performs a jump.
    frel_.NonEmptyRowsInto(&gates_);
    const BoxIndex bi = index_->at(fbox);
    int32_t span_cand;
    bool viable = WalkViable(bi, gates_, &span_cand);
    assert(viable);
    (void)viable;
    const TermNodeId jbox = bi.cand_box(span_cand);
    bi.cand_rel(span_cand).ComposeInto(frel_, &rj_);
    const BoxIndex ji = index_->at(jbox);
    assert(!term.IsLeaf(jbox));
    // Continue the loop at the left child (pushed first → popped after the
    // right subtree's Enter), if another iteration is viable there.
    {
      Frame& l = PushSlot();
      l.kind = Frame::kWalk;
      l.box = term.node(jbox).left;
      ji.wire_left().ComposeInto(rj_, &l.rel);
      bool keep = false;
      if (l.rel.Any()) {
        l.rel.NonEmptyRowsInto(&walk_gates_);
        int32_t next_span;
        keep = WalkViable(index_->at(l.box), walk_gates_, &next_span);
      }
      if (!keep) --top_;
    }
    {
      Frame& r = PushSlot();
      r.kind = Frame::kEnter;
      r.box = term.node(jbox).right;
      ji.wire_right().ComposeInto(rj_, &r.rel);
      if (!r.rel.Any()) --top_;
    }
  }
  return false;
}

// ------------------------------------------------------------------ Naive

NaiveBoxEnum::NaiveBoxEnum(const AssignmentCircuit* circuit, TermNodeId box,
                           const std::vector<uint32_t>& gamma)
    : circuit_(circuit) {
  Reset(box, gamma);
}

void NaiveBoxEnum::Reset(TermNodeId box, const std::vector<uint32_t>& gamma) {
  assert(!gamma.empty());
  top_ = 0;
  steps_ = 0;
  Frame& f = PushSlot();
  f.box = box;
  InitialRelationInto(circuit_->box(box).num_unions(), gamma, &f.rel);
}

NaiveBoxEnum::Frame& NaiveBoxEnum::PushSlot() {
  if (top_ == stack_.size()) stack_.emplace_back();
  return stack_[top_++];
}

bool NaiveBoxEnum::Next(BoxRelation* out) {
  const Term& term = circuit_->term();
  while (top_ > 0) {
    Frame& claimed = stack_[top_ - 1];
    const TermNodeId fbox = claimed.box;
    frel_.swap(claimed.rel);
    --top_;
    ++steps_;

    frel_.NonEmptyRowsInto(&gates_);
    if (gates_.empty()) continue;

    if (!term.IsLeaf(fbox)) {
      {
        Frame& r = PushSlot();
        r.box = term.node(fbox).right;
        WireRelationInto(*circuit_, fbox, 1, &wire_);
        wire_.ComposeInto(frel_, &r.rel);
        if (!r.rel.Any()) --top_;
      }
      {
        Frame& l = PushSlot();
        l.box = term.node(fbox).left;
        WireRelationInto(*circuit_, fbox, 0, &wire_);
        wire_.ComposeInto(frel_, &l.rel);
        if (!l.rel.Any()) --top_;
      }
    }

    const Box b = circuit_->box(fbox);
    bool interesting = false;
    for (uint32_t g : gates_) {
      if (b.HasNonUnionInput(g)) {
        interesting = true;
        break;
      }
    }
    if (interesting) {
      out->box = fbox;
      // Swap instead of move: the caller's previous buffer becomes the next
      // pop's swap target, keeping the cycle allocation-free.
      out->rel.swap(frel_);
      return true;
    }
  }
  return false;
}

}  // namespace treenum
