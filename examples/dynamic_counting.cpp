// Dynamic aggregation: maintain the number of query answers under updates
// without enumerating (the §4 multiset-semantics remark turned into a
// feature). For unambiguous automata — all query-library queries are —
// the maintained run count equals the answer count, and each update
// refreshes it by recomputing only the O(log n) changed boxes.
#include <cstdio>

#include "automata/homogenize.h"
#include "automata/query_library.h"
#include "automata/translate.h"
#include "circuit/circuit.h"
#include "counting/run_count.h"
#include "falgebra/update.h"
#include "util/random.h"

using namespace treenum;

int main() {
  Rng rng(99);
  UnrankedTva query = QueryMarkedAncestor(3, /*marked=*/1, /*special=*/2);
  HomogenizedTva h = HomogenizeBinaryTva(TranslateUnrankedTva(query).tva);

  DynamicEncoding enc(RandomTree(20000, 3, rng), 3);
  AssignmentCircuit circuit(&enc.term(), &h.tva, &h.kind);
  circuit.BuildAll();
  RunCounter counter(&circuit);
  counter.BuildAll();

  std::printf("tree: %zu nodes, initial answer count: %llu\n",
              enc.tree().size(),
              static_cast<unsigned long long>(counter.TotalAcceptingRuns()));

  // A stream of relabelings; after each, the count is current again after
  // touching only the changed path.
  std::vector<NodeId> nodes = enc.tree().PreorderNodes();
  size_t total_boxes = 0;
  for (int i = 0; i < 10; ++i) {
    NodeId n = nodes[rng.Index(nodes.size())];
    Label l = static_cast<Label>(rng.Index(3));
    UpdateResult r = enc.Relabel(n, l);
    for (TermNodeId id : r.freed) {
      circuit.FreeBox(id);
      counter.FreeBoxCounts(id);
    }
    for (TermNodeId id : r.changed_bottom_up) {
      circuit.RebuildBox(id);
      counter.RebuildBoxCounts(id);
    }
    total_boxes += r.changed_bottom_up.size();
    std::printf("relabel node %u -> %c: count = %llu  (%zu boxes touched)\n",
                n, static_cast<char>('a' + l),
                static_cast<unsigned long long>(counter.TotalAcceptingRuns()),
                r.changed_bottom_up.size());
  }
  std::printf("average boxes touched per update: %.1f (tree has %zu nodes)\n",
              static_cast<double>(total_boxes) / 10.0, enc.tree().size());
  return 0;
}
