// End-to-end property tests: long random edit scripts over random trees and
// random nondeterministic automata, cross-checked against the independent
// naive materializing oracle after every edit.
//
// Random automata can have exponentially many answers (e.g. subset-style
// queries), so each step first counts answers through the cursor with a cap
// and only materializes the oracle when the result set is small; steps whose
// result sets exceed the cap still check structural invariants.
#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "automata/query_library.h"
#include "automata/regex_spanner.h"
#include "automata/wva.h"
#include "baseline/naive_engine.h"
#include "baseline/static_engine.h"
#include "core/engine.h"
#include "core/tree_enumerator.h"
#include "core/word_enumerator.h"
#include "test_util.h"

namespace treenum {
namespace {

constexpr size_t kAnswerCap = 20000;

std::optional<std::vector<Assignment>> CollectCapped(
    const TreeEnumerator& e) {
  TreeEnumerator::Cursor c = e.Enumerate();
  std::vector<Assignment> out;
  Assignment a;
  while (c.Next(&a)) {
    out.push_back(a);
    if (out.size() > kAnswerCap) return std::nullopt;
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct ScriptConfig {
  uint64_t seed;
  size_t initial_size;
  size_t steps;
  size_t states;
  size_t vars;
  /// Growth cap: with v variables a subset-style automaton can have up to
  /// 2^(v*n) answers, so the cap keeps every step below kAnswerCap and thus
  /// oracle-checkable.
  size_t max_size;
};

class PipelinePropertyTest : public ::testing::TestWithParam<ScriptConfig> {};

TEST_P(PipelinePropertyTest, RandomAutomatonRandomEditScript) {
  const ScriptConfig& cfg = GetParam();
  Rng rng(cfg.seed);
  UnrankedTva q =
      RandomUnrankedTva(rng, cfg.states, 2, cfg.vars, 4, 3 * cfg.states);
  UnrankedTree t = RandomTree(cfg.initial_size, 2, rng);
  TreeEnumerator indexed(t, q, BoxEnumMode::kIndexed);
  TreeEnumerator naive_mode(t, q, BoxEnumMode::kNaive);
  UnrankedTree mirror = t;  // same edits => same NodeIds

  size_t checked = 0;
  for (size_t step = 0; step < cfg.steps; ++step) {
    std::vector<NodeId> nodes = mirror.PreorderNodes();
    NodeId n = nodes[rng.Index(nodes.size())];
    size_t op = rng.Index(4);
    if (mirror.size() >= cfg.max_size && (op == 1 || op == 2)) op = 0;
    switch (op) {
      case 0: {
        Label l = static_cast<Label>(rng.Index(2));
        indexed.Relabel(n, l);
        naive_mode.Relabel(n, l);
        mirror.Relabel(n, l);
        break;
      }
      case 1: {
        Label l = static_cast<Label>(rng.Index(2));
        indexed.InsertFirstChild(n, l);
        naive_mode.InsertFirstChild(n, l);
        mirror.InsertFirstChild(n, l);
        break;
      }
      case 2: {
        if (n == mirror.root()) break;
        Label l = static_cast<Label>(rng.Index(2));
        indexed.InsertRightSibling(n, l);
        naive_mode.InsertRightSibling(n, l);
        mirror.InsertRightSibling(n, l);
        break;
      }
      case 3: {
        if (n == mirror.root() || !mirror.IsLeaf(n)) break;
        indexed.DeleteLeaf(n);
        naive_mode.DeleteLeaf(n);
        mirror.DeleteLeaf(n);
        break;
      }
    }
    ASSERT_TRUE(indexed.tree() == mirror);
    std::optional<std::vector<Assignment>> got = CollectCapped(indexed);
    if (!got.has_value()) continue;  // result set too large to oracle-check
    ASSERT_EQ(*got, MaterializeAssignments(mirror, q))
        << "seed " << cfg.seed << " step " << step;
    std::optional<std::vector<Assignment>> got2 = CollectCapped(naive_mode);
    ASSERT_TRUE(got2.has_value());
    ASSERT_EQ(*got, *got2) << "seed " << cfg.seed << " step " << step;
    ++checked;
  }
  // The configs are chosen so that a decent share of steps is checkable.
  EXPECT_GT(checked, cfg.steps / 8) << "seed " << cfg.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Scripts, PipelinePropertyTest,
    ::testing::Values(ScriptConfig{1001, 5, 60, 2, 1, 14},
                      ScriptConfig{1002, 14, 50, 3, 1, 14},
                      ScriptConfig{1003, 6, 40, 2, 2, 7},
                      ScriptConfig{1004, 1, 80, 3, 1, 14},
                      ScriptConfig{1005, 12, 30, 3, 1, 13},
                      ScriptConfig{1006, 10, 50, 4, 1, 12},
                      ScriptConfig{1007, 5, 40, 2, 2, 7},
                      ScriptConfig{1008, 7, 30, 3, 2, 7}),
    [](const ::testing::TestParamInfo<ScriptConfig>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

// Deep path trees exercise the rebalancing and hole-closure paths harder:
// grow a path node by node, then delete it back down, checking after every
// edit against the oracle.
TEST(PipelineProperty, PathGrowShrinkAgainstOracle) {
  Rng rng(307);
  UnrankedTva q = QueryMarkedAncestor(2, 0, 1);
  UnrankedTree t(0);
  TreeEnumerator e(t, q);
  NaiveEngine oracle(t, q);
  std::vector<NodeId> path{oracle.tree().root()};
  for (int i = 0; i < 40; ++i) {
    Label l = static_cast<Label>(rng.Index(2));
    NodeId u;
    e.InsertFirstChild(path.back(), l, &u);
    NodeId v;
    oracle.InsertFirstChild(path.back(), l, &v);
    ASSERT_EQ(u, v);
    path.push_back(u);
    ASSERT_EQ(e.EnumerateAll(), oracle.results()) << "grow " << i;
  }
  while (path.size() > 1) {
    NodeId leaf = path.back();
    path.pop_back();
    e.DeleteLeaf(leaf);
    oracle.DeleteLeaf(leaf);
    ASSERT_EQ(e.EnumerateAll(), oracle.results())
        << "shrink at " << path.size();
  }
}

// ---- Batched updates --------------------------------------------------------
//
// Property: ApplyEdits(batch) ≡ the same edits applied one-by-one ≡ the
// NaiveEngine oracle, on randomized edit scripts. All engines are driven
// through the shared Engine interface.

// Generates a batch of `k` edits that is valid when applied sequentially,
// advancing `mirror` as the ground truth. Edits may target nodes created
// earlier in the same batch (node ids are deterministic across engines).
std::vector<Edit> RandomTreeBatch(UnrankedTree& mirror, Rng& rng, size_t k,
                                  size_t labels, size_t max_size) {
  std::vector<Edit> edits;
  while (edits.size() < k) {
    std::vector<NodeId> nodes = mirror.PreorderNodes();
    NodeId n = nodes[rng.Index(nodes.size())];
    size_t op = rng.Index(4);
    if (mirror.size() >= max_size && (op == 1 || op == 2)) op = 0;
    Label l = static_cast<Label>(rng.Index(labels));
    switch (op) {
      case 0:
        mirror.Relabel(n, l);
        edits.push_back(Edit::Relabel(n, l));
        break;
      case 1:
        mirror.InsertFirstChild(n, l);
        edits.push_back(Edit::InsertFirstChild(n, l));
        break;
      case 2:
        if (n == mirror.root()) break;
        mirror.InsertRightSibling(n, l);
        edits.push_back(Edit::InsertRightSibling(n, l));
        break;
      default:
        if (n == mirror.root() || !mirror.IsLeaf(n)) break;
        mirror.DeleteLeaf(n);
        edits.push_back(Edit::DeleteLeaf(n));
        break;
    }
  }
  return edits;
}

TEST(BatchedUpdates, BatchEqualsSequentialEqualsOracleOnTrees) {
  Rng rng(401);
  UnrankedTva queries[] = {QueryMarkedAncestor(3, 1, 2),
                           QueryDescendantPairs(3, 0, 1)};
  for (const UnrankedTva& q : queries) {
    UnrankedTree t = RandomTree(20, 3, rng);
    TreeEnumerator sequential(t, q);
    TreeEnumerator batched(t, q);
    batched.EnableCounting();  // cover counter maintenance at commit
    NaiveEngine oracle(t, q);
    StaticEngine rebuilt(t, q);
    UnrankedTree mirror = t;
    for (int round = 0; round < 12; ++round) {
      size_t k = 1 + rng.Index(12);
      std::vector<Edit> batch = RandomTreeBatch(mirror, rng, k, 3, 60);
      UpdateStats seq_stats;
      for (const Edit& e : batch) seq_stats += sequential.ApplyEdit(e);
      UpdateStats batch_stats = batched.ApplyEdits(batch);
      oracle.ApplyEdits(batch);
      rebuilt.ApplyEdits(batch);
      ASSERT_TRUE(sequential.tree() == mirror) << "round " << round;
      ASSERT_TRUE(batched.tree() == mirror) << "round " << round;
      EXPECT_EQ(batch_stats.edits_applied, batch.size());
      // Coalescing must never refresh more boxes than the per-edit path.
      EXPECT_LE(batch_stats.boxes_recomputed, seq_stats.boxes_recomputed)
          << "round " << round;
      std::vector<Assignment> expected = oracle.EnumerateAll();
      ASSERT_EQ(sequential.EnumerateAll(), expected) << "round " << round;
      ASSERT_EQ(batched.EnumerateAll(), expected) << "round " << round;
      ASSERT_EQ(rebuilt.EnumerateAll(), expected) << "round " << round;
      ASSERT_EQ(batched.AcceptingRuns(), expected.size())
          << "round " << round;
    }
  }
}

TEST(BatchedUpdates, RandomAutomatonBatchesAgainstMaterialization) {
  for (uint64_t seed : {421u, 431u, 433u}) {
    Rng rng(seed);
    UnrankedTva q = RandomUnrankedTva(rng, 3, 2, 1, 4, 9);
    UnrankedTree t = RandomTree(10, 2, rng);
    TreeEnumerator sequential(t, q);
    TreeEnumerator batched(t, q);
    UnrankedTree mirror = t;
    for (int round = 0; round < 10; ++round) {
      std::vector<Edit> batch =
          RandomTreeBatch(mirror, rng, 1 + rng.Index(8), 2, 14);
      for (const Edit& e : batch) sequential.ApplyEdit(e);
      batched.ApplyEdits(batch);
      std::optional<std::vector<Assignment>> got = CollectCapped(batched);
      if (!got.has_value()) continue;
      ASSERT_EQ(*got, MaterializeAssignments(mirror, q))
          << "seed " << seed << " round " << round;
      std::optional<std::vector<Assignment>> seq = CollectCapped(sequential);
      ASSERT_TRUE(seq.has_value());
      ASSERT_EQ(*got, *seq) << "seed " << seed << " round " << round;
    }
  }
}

TEST(BatchedUpdates, DeleteOfNodeInsertedWithinBatch) {
  // A node created and deleted inside one batch must leave no trace: its
  // boxes are freed (or never built) at commit.
  UnrankedTree t = UnrankedTree::Parse("(a (b) (b))");
  UnrankedTva q = QuerySelectLabel(2, 1);
  TreeEnumerator e(t, q);
  NodeId root = e.tree().root();
  e.BeginBatch();
  NodeId u;
  e.InsertFirstChild(root, 1, &u);
  NodeId v;
  e.InsertRightSibling(u, 1, &v);
  e.DeleteLeaf(u);
  UpdateStats stats = e.CommitBatch();
  EXPECT_GT(stats.boxes_recomputed, 0u);
  EXPECT_EQ(e.EnumerateAll().size(), 3u);  // two old b-nodes + v
}

// a*<x:b>(a|b)* — select every b position (same query as the word tests).
Wva SelectBWva() {
  Wva q(2, 2, 1);
  q.AddInitial(0);
  q.AddTransition(0, 0, 0, 0);
  q.AddTransition(0, 1, 0, 0);
  q.AddTransition(0, 1, 1, 1);
  q.AddTransition(1, 0, 0, 1);
  q.AddTransition(1, 1, 0, 1);
  q.AddFinal(1);
  return q;
}

TEST(BatchedUpdates, ApplyEditsJoinsAnOpenBatch) {
  // ApplyEdits inside an explicit BeginBatch/CommitBatch must not commit
  // the caller's transaction early.
  UnrankedTree t = UnrankedTree::Parse("(a (b) (b))");
  UnrankedTva q = QuerySelectLabel(2, 1);
  TreeEnumerator e(t, q);
  NodeId root = e.tree().root();
  e.BeginBatch();
  e.InsertFirstChild(root, 1);
  UpdateStats inner = e.ApplyEdits({Edit::InsertFirstChild(root, 1)});
  EXPECT_TRUE(e.in_batch());  // still our transaction
  EXPECT_EQ(inner.boxes_recomputed, 0u);  // nothing refreshed yet
  e.InsertFirstChild(root, 1);
  UpdateStats commit = e.CommitBatch();
  EXPECT_FALSE(e.in_batch());
  EXPECT_GT(commit.boxes_recomputed, 0u);
  EXPECT_EQ(e.EnumerateAll().size(), 5u);  // 2 old + 3 new b-nodes
}

TEST(BatchedUpdates, WordBatchEqualsSequentialEqualsFreshRebuild) {
  Wva q = SelectBWva();
  Rng rng(443);
  Word ref;
  for (int i = 0; i < 12; ++i) ref.push_back(static_cast<Label>(rng.Index(2)));
  WordEnumerator sequential(ref, q);
  WordEnumerator batched(ref, q);
  for (int round = 0; round < 15; ++round) {
    size_t k = 1 + rng.Index(8);
    batched.BeginBatch();
    for (size_t i = 0; i < k; ++i) {
      switch (rng.Index(4)) {
        case 0: {
          size_t pos = rng.Index(ref.size() + 1);
          Label l = static_cast<Label>(rng.Index(2));
          ref.insert(ref.begin() + pos, l);
          sequential.Insert(pos, l);
          batched.Insert(pos, l);
          break;
        }
        case 1: {
          size_t pos = rng.Index(ref.size());
          Label l = static_cast<Label>(rng.Index(2));
          ref[pos] = l;
          sequential.Replace(pos, l);
          batched.Replace(pos, l);
          break;
        }
        case 2: {
          if (ref.size() <= 1) break;
          size_t pos = rng.Index(ref.size());
          ref.erase(ref.begin() + pos);
          sequential.Erase(pos);
          batched.Erase(pos);
          break;
        }
        default: {
          size_t begin = rng.Index(ref.size());
          size_t end = begin + 1 + rng.Index(ref.size() - begin);
          size_t dst = rng.Index(ref.size() - (end - begin) + 1);
          Word factor(ref.begin() + begin, ref.begin() + end);
          ref.erase(ref.begin() + begin, ref.begin() + end);
          ref.insert(ref.begin() + dst, factor.begin(), factor.end());
          sequential.MoveRange(begin, end, dst);
          batched.MoveRange(begin, end, dst);
          break;
        }
      }
    }
    batched.CommitBatch();
    WordEnumerator fresh(ref, q);  // independent static-preprocessing oracle
    std::vector<Assignment> expected = fresh.EnumerateAllByPosition();
    ASSERT_EQ(sequential.EnumerateAllByPosition(), expected)
        << "round " << round;
    ASSERT_EQ(batched.EnumerateAllByPosition(), expected)
        << "round " << round;
    ASSERT_EQ(expected, q.BruteForceAssignments(ref)) << "round " << round;
  }
}

TEST(BatchedUpdates, EngineInterfaceDrivesAllFourBackends) {
  // The same polymorphic loop exercises every backend, including the word
  // engine via stable position ids.
  Rng rng(449);
  UnrankedTva q = QueryMarkedAncestor(3, 1, 2);
  UnrankedTree t = RandomTree(15, 3, rng);
  std::vector<std::unique_ptr<Engine>> tree_engines;
  tree_engines.push_back(std::make_unique<TreeEnumerator>(t, q));
  tree_engines.push_back(
      std::make_unique<TreeEnumerator>(t, q, BoxEnumMode::kNaive));
  tree_engines.push_back(std::make_unique<NaiveEngine>(t, q));
  tree_engines.push_back(std::make_unique<StaticEngine>(t, q));
  UnrankedTree mirror = t;
  for (int round = 0; round < 6; ++round) {
    std::vector<Edit> batch = RandomTreeBatch(mirror, rng, 5, 3, 40);
    std::vector<std::vector<Assignment>> all;
    for (auto& engine : tree_engines) {
      engine->ApplyEdits(batch);
      EXPECT_EQ(engine->size(), mirror.size());
      std::vector<Assignment> via_cursor;
      std::unique_ptr<Engine::Cursor> c = engine->MakeCursor();
      Assignment a;
      while (c->Next(&a)) via_cursor.push_back(a);
      std::sort(via_cursor.begin(), via_cursor.end());
      EXPECT_EQ(via_cursor, engine->EnumerateAll());
      EXPECT_EQ(engine->HasAnswer(), !via_cursor.empty());
      all.push_back(std::move(via_cursor));
    }
    for (size_t i = 1; i < all.size(); ++i) {
      ASSERT_EQ(all[i], all[0]) << "engine " << i << " round " << round;
    }
  }

  // Word engine through the same interface: edits by stable position id.
  Wva wq = SelectBWva();
  Word w = ToWord("abba");
  WordEnumerator we(w, wq);
  Engine& engine = we;
  // Positions 0..3 have stable ids 0..3 at construction.
  engine.Relabel(0, 1);  // "bbba"
  NodeId fresh = kNoNode;
  engine.InsertRightSibling(3, 1, &fresh);  // "bbbab"
  ASSERT_NE(fresh, kNoNode);
  engine.DeleteLeaf(1);  // "bbab"
  EXPECT_EQ(engine.size(), 4u);
  EXPECT_EQ(we.EnumerateAllByPosition(),
            wq.BruteForceAssignments(ToWord("bbab")));
}

}  // namespace
}  // namespace treenum
